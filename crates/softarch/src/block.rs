//! The composable failure-time algebra behind SoftArch's MTTF computation.
//!
//! SoftArch determines the expected time to *first* failure from per-cycle
//! failure probabilities. A [`Block`] summarizes a stretch of execution by
//! three numbers — its length, the probability of failing inside it, and
//! the expected-failure-time mass accumulated inside it — and blocks
//! compose:
//!
//! * sequential execution is [`Block::then`];
//! * a loop body executed `k` times is [`Block::tile`] (closed form, so a
//!   12-hour half of the `combined` workload that tiles a benchmark 40
//!   million times costs O(1));
//! * an infinitely repeating workload's MTTF is [`Block::mttf_cycles`].
//!
//! The failure probability is stored directly (not as survival) so that
//! blocks with astronomically small per-iteration failure probabilities —
//! exactly the `λL → 0` regime the paper studies — keep full relative
//! precision through composition.

/// Numerically stable `1 − e^{−x}`.
fn omen(x: f64) -> f64 {
    -(-x).exp_m1()
}

/// A summary of a stretch of execution for first-failure analysis.
///
/// Invariants: `fail_prob ∈ [0, 1]`, `fail_time_mass ≥ 0`, and
/// `fail_time_mass ≤ len · fail_prob` (a failure inside the block happens
/// before the block ends).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// Length in cycles.
    len: f64,
    /// Probability a failure occurs in the block: `1 − ∏(1 − p_c)`.
    fail_prob: f64,
    /// `Σ_c (∏_{j<c}(1−p_j)) · p_c · t_c` with `t_c` from block start.
    fail_time_mass: f64,
}

impl Block {
    /// A block of `cycles` cycles under constant failure intensity
    /// `rho` per cycle (per-cycle failure probability `1 − e^{−ρ}`).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is negative or `cycles` is zero.
    #[must_use]
    pub fn constant(rho: f64, cycles: u64) -> Self {
        assert!(rho >= 0.0, "intensity must be non-negative");
        assert!(cycles > 0, "block must span at least one cycle");
        let d = cycles as f64;
        if rho == 0.0 {
            return Block { len: d, fail_prob: 0.0, fail_time_mass: 0.0 };
        }
        // Single cycle: fails at its start with p = 1 − e^{−ρ}.
        // Tiling that d times gives (telescoped, stable):
        //   mass = (g1 − 1) − (d − 1)·e^{−ρd},  g1 = (1 − e^{−ρd})/(1 − e^{−ρ}).
        let q = omen(rho * d);
        let g1 = q / omen(rho);
        let s_d = (-rho * d).exp();
        Block { len: d, fail_prob: q, fail_time_mass: ((g1 - 1.0) - (d - 1.0) * s_d).max(0.0) }
    }

    /// Length in cycles.
    #[must_use]
    pub fn len(&self) -> f64 {
        self.len
    }

    /// True only for a degenerate zero-length block (not constructible via
    /// the public API; provided for completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0.0
    }

    /// Probability a failure occurs inside the block.
    #[must_use]
    pub fn fail_prob(&self) -> f64 {
        self.fail_prob
    }

    /// Probability of surviving the whole block (`1 − fail_prob`; may round
    /// to 1.0 for tiny failure probabilities — use [`Block::fail_prob`] for
    /// precise work).
    #[must_use]
    pub fn survival(&self) -> f64 {
        1.0 - self.fail_prob
    }

    /// The expected-failure-time mass (see struct docs).
    #[must_use]
    pub fn fail_time_mass(&self) -> f64 {
        self.fail_time_mass
    }

    /// Sequential composition: this block, then `next`.
    #[must_use]
    pub fn then(&self, next: &Block) -> Block {
        let (q1, q2) = (self.fail_prob, next.fail_prob);
        Block {
            len: self.len + next.len,
            // 1 − (1−q1)(1−q2), preserving tiny probabilities.
            fail_prob: (q1 + q2 - q1 * q2).clamp(0.0, 1.0),
            // Failures in `next` happen after `self.len` cycles and are
            // conditioned on surviving `self`.
            fail_time_mass: self.fail_time_mass
                + (1.0 - q1) * (next.fail_time_mass + self.len * q2),
        }
    }

    /// This block repeated `k` times, in closed form.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn tile(&self, k: u64) -> Block {
        assert!(k > 0, "tile count must be positive");
        if k == 1 {
            return *self;
        }
        let q = self.fail_prob;
        let kf = k as f64;
        if q == 0.0 {
            return Block { len: self.len * kf, fail_prob: 0.0, fail_time_mass: 0.0 };
        }
        // q_k = 1 − (1−q)^k, computed in log space for stability.
        let q_k = -((kf * (-q).ln_1p()).exp_m1());
        let s_k = 1.0 - q_k;
        // g1 = Σ_{j<k} (1−q)^j = q_k/q; (1−q)·Σ j(1−q)^j telescopes to
        // (g1 − 1) − (k−1)(1−q)^k.
        let g1 = q_k / q;
        let mass = self.fail_time_mass * g1 + self.len * ((g1 - 1.0) - (kf - 1.0) * s_k);
        Block { len: self.len * kf, fail_prob: q_k, fail_time_mass: mass.max(0.0) }
    }

    /// The MTTF, in cycles, of this block repeated forever:
    /// `MTTF = (mass + len·(1 − q)) / q`.
    ///
    /// # Panics
    ///
    /// Panics if the block can never fail (`fail_prob == 0`).
    #[must_use]
    pub fn mttf_cycles(&self) -> f64 {
        assert!(self.fail_prob > 0.0, "block never fails; MTTF is infinite");
        (self.fail_time_mass + self.len * (1.0 - self.fail_prob)) / self.fail_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: explicit per-cycle accumulation.
    fn naive(rho: f64, cycles: u64) -> Block {
        let p = 1.0 - (-rho).exp();
        let mut survival = 1.0;
        let mut mass = 0.0;
        for c in 0..cycles {
            mass += survival * p * c as f64;
            survival *= 1.0 - p;
        }
        Block { len: cycles as f64, fail_prob: 1.0 - survival, fail_time_mass: mass }
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-300)
    }

    #[test]
    fn constant_matches_naive_accumulation() {
        for &(rho, d) in &[(0.1, 50u64), (0.01, 500), (1.0, 10), (1e-6, 1000)] {
            let fast = Block::constant(rho, d);
            let slow = naive(rho, d);
            assert!(close(fast.fail_prob, slow.fail_prob, 1e-10), "q ρ={rho} d={d}");
            assert!(
                close(fast.fail_time_mass, slow.fail_time_mass, 1e-8),
                "mass ρ={rho} d={d}: {} vs {}",
                fast.fail_time_mass,
                slow.fail_time_mass
            );
        }
    }

    #[test]
    fn then_matches_naive_concatenation() {
        let a = Block::constant(0.05, 30);
        let b = Block::constant(0.002, 70);
        let joined = a.then(&b);
        // Reference: cycle-by-cycle with piecewise intensity.
        let mut survival = 1.0;
        let mut mass = 0.0;
        for c in 0..100u64 {
            let p = if c < 30 { 1.0 - (-0.05f64).exp() } else { 1.0 - (-0.002f64).exp() };
            mass += survival * p * c as f64;
            survival *= 1.0 - p;
        }
        assert!(close(joined.survival(), survival, 1e-12));
        assert!(close(joined.fail_time_mass, mass, 1e-9));
        assert_eq!(joined.len, 100.0);
    }

    #[test]
    fn tile_equals_repeated_then() {
        let b = Block::constant(0.01, 17);
        let mut manual = b;
        for _ in 1..6 {
            manual = manual.then(&b);
        }
        let tiled = b.tile(6);
        assert!(close(manual.fail_prob, tiled.fail_prob, 1e-12));
        assert!(close(manual.fail_time_mass, tiled.fail_time_mass, 1e-10));
        assert_eq!(manual.len, tiled.len);
    }

    #[test]
    fn mttf_of_constant_intensity_is_geometric_mean_time() {
        // Constant ρ per cycle, failures at cycle starts: the failure cycle
        // index is geometric with p = 1−e^{−ρ}, so MTTF = (1−p)/p.
        for &rho in &[0.5, 0.01, 1e-5] {
            let b = Block::constant(rho, 1000);
            let p = 1.0 - (-rho).exp();
            let want = (1.0 - p) / p;
            let got = b.mttf_cycles();
            assert!(close(got, want, 1e-9), "ρ={rho}: {got} vs {want}");
        }
    }

    #[test]
    fn busy_idle_mttf_close_to_continuous_renewal() {
        // Discrete SoftArch vs continuous renewal differ by O(ρ) per cycle;
        // at ρ = 1e-4 they agree to ~4 digits.
        let rho = 1e-4;
        let (busy, idle) = (2_000u64, 8_000u64);
        let block = Block::constant(rho, busy).then(&Block::constant(0.0, idle));
        let sa = block.mttf_cycles();
        let trace = serr_trace::IntervalTrace::busy_idle(busy, idle).unwrap();
        let renewal = serr_analytic::renewal::renewal_mttf_cycles(&trace, rho);
        assert!(close(sa, renewal, 1e-3), "softarch {sa} vs renewal {renewal}");
    }

    #[test]
    fn tiny_failure_probabilities_survive_tiling() {
        // Per-tile q ~ 1e-12; 1e6 tiles must give q_k ~ 1e-6 with full
        // relative precision, not 1-ulp noise around survival = 1.0.
        let b = Block::constant(1e-15, 1000); // q ≈ 1e-12
        let big = b.tile(1_000_000);
        assert!(close(big.fail_prob, 1e-6, 1e-3), "q_k {}", big.fail_prob);
        let mttf = big.mttf_cycles();
        // MTTF ≈ 1/ρ (always vulnerable at rate 1e-15/cycle).
        assert!(close(mttf, 1e15, 1e-6), "mttf {mttf}");
    }

    #[test]
    fn huge_tile_counts_are_exact_not_iterated() {
        let b = Block::constant(1e-9, 1_000_000);
        let big = b.tile(40_000_000);
        assert!(big.fail_prob > 0.999_999);
        assert!((big.mttf_cycles() - b.mttf_cycles()).abs() / b.mttf_cycles() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "never fails")]
    fn mttf_of_unfailing_block_panics() {
        let _ = Block::constant(0.0, 10).mttf_cycles();
    }

    proptest! {
        #[test]
        fn invariants_hold(
            rho in 1e-8f64..0.5,
            d in 1u64..10_000,
            k in 1u64..1000,
        ) {
            let b = Block::constant(rho, d).tile(k);
            prop_assert!(b.fail_prob > 0.0 && b.fail_prob <= 1.0);
            prop_assert!(b.fail_time_mass >= 0.0);
            // A failure inside the block happens before it ends.
            prop_assert!(b.fail_time_mass <= b.len * b.fail_prob * (1.0 + 1e-9));
        }

        #[test]
        fn then_is_associative(
            r1 in 1e-6f64..0.3, r2 in 1e-6f64..0.3, r3 in 1e-6f64..0.3,
            d1 in 1u64..500, d2 in 1u64..500, d3 in 1u64..500,
        ) {
            let (a, b, c) = (
                Block::constant(r1, d1),
                Block::constant(r2, d2),
                Block::constant(r3, d3),
            );
            let left = a.then(&b).then(&c);
            let right = a.then(&b.then(&c));
            prop_assert!(close(left.fail_prob, right.fail_prob, 1e-12));
            prop_assert!(close(left.fail_time_mass, right.fail_time_mass, 1e-9));
        }

        #[test]
        fn mttf_bounded_by_intensity_envelopes(
            rho in 1e-6f64..0.1,
            busy in 1u64..500,
            idle in 0u64..500,
        ) {
            let block = if idle == 0 {
                Block::constant(rho, busy)
            } else {
                Block::constant(rho, busy).then(&Block::constant(0.0, idle))
            };
            let mttf = block.mttf_cycles();
            let p = 1.0 - (-rho).exp();
            let always_busy = (1.0 - p) / p;
            let avf = busy as f64 / (busy + idle) as f64;
            prop_assert!(mttf >= always_busy * (1.0 - 1e-9));
            // No slower than the AVF-derated bound (+1 cycle discretization).
            prop_assert!(mttf <= always_busy / avf + (busy + idle) as f64);
        }
    }
}
