//! Property test: SoftArch's discrete block algebra agrees with the
//! continuous renewal closed form on randomly shaped traces whenever the
//! per-cycle intensity is small (their difference is O(ρ) per cycle).

use proptest::prelude::*;
use serr_softarch::SoftArch;
use serr_trace::IntervalTrace;
use serr_types::{Frequency, RawErrorRate};

proptest! {
    #[test]
    fn softarch_matches_renewal_on_random_traces(
        levels in proptest::collection::vec((0..=8u8).prop_map(|q| f64::from(q) / 8.0), 2..60),
        lambda_l_exp in -6.0f64..1.5,
        tiles in 1u64..500,
    ) {
        prop_assume!(levels.iter().any(|&v| v > 0.0));
        let trace = IntervalTrace::from_levels(&levels).unwrap();
        let freq = Frequency::base();
        let period_s = levels.len() as f64 / freq.hz();
        let lambda_l = 10f64.powf(lambda_l_exp);
        let rate = RawErrorRate::per_second(lambda_l / period_s);

        let sa = SoftArch::new(freq);
        let soft = sa.component_mttf(&trace, rate).unwrap();
        let exact = serr_analytic::renewal::renewal_mttf(&trace, rate, freq).unwrap();
        let err = (soft.as_secs() - exact.as_secs()).abs() / exact.as_secs();
        // ρ per cycle ≤ λL/len ≤ 30/2: discretization error is O(ρ).
        let rho = lambda_l / levels.len() as f64;
        prop_assert!(err < rho.max(1e-9) * 2.0 + 1e-9, "err {err}, ρ {rho}");

        // Tiling the same trace must not change the infinite-repetition
        // MTTF (the workload loop is the same).
        let tiled = sa
            .tiled_mttf(&[(&trace, tiles)], rate)
            .unwrap();
        let terr = (tiled.as_secs() - soft.as_secs()).abs() / soft.as_secs();
        prop_assert!(terr < 1e-6, "tiled {terr}");
    }
}
