//! LEB128 variable-length integers — the length prefix for every record in
//! a store page.
//!
//! Small lengths (the common case: journal rows, trace headers) cost one
//! byte; the encoding caps at ten bytes for the full `u64` range. Decoding
//! is bounds-checked and never panics on corrupt input.

use serr_types::SerrError;

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `buf` as an LEB128 varint.
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from the front of `input`, advancing it past the
/// consumed bytes.
///
/// # Errors
///
/// [`SerrError::StoreCorrupt`] if the input ends mid-varint or the encoding
/// overflows 64 bits.
pub fn read_u64(input: &mut &[u8]) -> Result<u64, SerrError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            break;
        }
        let low = u64::from(byte & 0x7F);
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(SerrError::store_corrupt("varint", "value overflows u64"));
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(SerrError::store_corrupt("varint", "input ends mid-varint"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0);
        assert_eq!(buf, [0x00]);
        buf.clear();
        write_u64(&mut buf, 127);
        assert_eq!(buf, [0x7F]);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf, [0x80, 0x01]);
        buf.clear();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
    }

    #[test]
    fn truncated_and_overflowing_inputs_are_typed_errors() {
        let mut input: &[u8] = &[0x80];
        assert!(read_u64(&mut input).is_err());
        let mut input: &[u8] = &[0xFF; 11];
        assert!(read_u64(&mut input).is_err());
        let mut input: &[u8] = &[];
        assert!(read_u64(&mut input).is_err());
    }

    proptest! {
        #[test]
        fn round_trips_any_u64(value in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, value);
            let mut input = buf.as_slice();
            prop_assert_eq!(read_u64(&mut input).expect("round trip"), value);
            prop_assert!(input.is_empty());
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
            let mut input = bytes.as_slice();
            let _ = read_u64(&mut input);
        }
    }
}
