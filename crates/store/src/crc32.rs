//! CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
//! store header and page payload.
//!
//! Slicing-by-8: eight tables built at compile time let the hot loop fold
//! one aligned 8-byte word per iteration instead of one byte, which is
//! what keeps checksum verification off the journal-resume critical path
//! (the whole file is re-CRC'd on every open). No dependencies, and the
//! same polynomial every zlib-compatible tool can verify independently.

const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte `b` followed by k zero bytes, so eight
    // lookups — one per input byte — combine into one 64-bit step.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes` (IEEE polynomial, init and final XOR `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference one-byte-at-a-time formulation the sliced loop must
    /// reproduce exactly.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sliced_loop_matches_the_bytewise_reference_at_every_length() {
        // Lengths straddling the 8-byte fold boundary, including the
        // remainder loop, on data with no structure the tables could hide
        // behind.
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_bytewise(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"soft error analysis".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit} went undetected");
            }
        }
    }
}
