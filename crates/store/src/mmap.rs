//! Read-only file images: memory-mapped on unix, buffered-read everywhere
//! else (and as an explicit fallback for benchmarking the difference).
//!
//! The workspace is std-only, so instead of pulling in `libc` or a mmap
//! crate the unix path declares the two syscall wrappers it needs with
//! `extern "C"` — std already links libc, the symbols are ABI-stable, and
//! the prototypes below match `mmap(2)`/`munmap(2)` on 64-bit unix. The
//! mapping is `PROT_READ`/`MAP_PRIVATE`: the kernel faults pages in on
//! demand and nothing here can write through it.

use serr_types::SerrError;
use std::fs;
use std::path::Path;

/// A read-only byte image of a file. Dereferences to `[u8]`; the backing
/// storage is either an owned buffer or a private read-only mapping that is
/// unmapped on drop.
#[derive(Debug)]
pub struct FileBytes {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
}

// SAFETY: the mapping is private and read-only for its whole lifetime; no
// interior mutability, so sharing references across threads is sound.
#[cfg(unix)]
unsafe impl Send for FileBytes {}
#[cfg(unix)]
unsafe impl Sync for FileBytes {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl FileBytes {
    /// Loads `path` through an ordinary buffered read.
    ///
    /// # Errors
    ///
    /// [`SerrError::Io`] when the file cannot be read.
    pub fn read(path: &Path) -> Result<FileBytes, SerrError> {
        let bytes = fs::read(path)
            .map_err(|e| SerrError::io(format!("read {}", path.display()), e.to_string()))?;
        Ok(FileBytes { inner: Inner::Owned(bytes) })
    }

    /// Maps `path` read-only (zero-copy on unix). Falls back to
    /// [`FileBytes::read`] on non-unix targets, for empty files (a
    /// zero-length mapping is invalid), and when the map call itself fails.
    ///
    /// # Errors
    ///
    /// [`SerrError::Io`] when the file cannot be opened or read.
    pub fn map(path: &Path) -> Result<FileBytes, SerrError> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let site = || format!("map {}", path.display());
            let file = fs::File::open(path).map_err(|e| SerrError::io(site(), e.to_string()))?;
            let len = file.metadata().map_err(|e| SerrError::io(site(), e.to_string()))?.len();
            let Ok(len) = usize::try_from(len) else {
                return Err(SerrError::io(site(), "file exceeds address space".to_owned()));
            };
            if len == 0 {
                return Ok(FileBytes { inner: Inner::Owned(Vec::new()) });
            }
            // SAFETY: fd is a valid open file for the duration of the call;
            // len is its exact size; PROT_READ|MAP_PRIVATE cannot alias any
            // writable mapping we hold. A MAP_FAILED return is checked.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                // Degrade to the portable path rather than failing the load.
                return FileBytes::read(path);
            }
            Ok(FileBytes { inner: Inner::Mapped { ptr, len } })
        }
        #[cfg(not(unix))]
        {
            FileBytes::read(path)
        }
    }

    /// The file image.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned(v) => v,
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the mapping at `ptr` spans exactly `len` readable
                // bytes and lives until drop; it is never written through.
                unsafe { std::slice::from_raw_parts((*ptr).cast::<u8>(), *len) }
            }
        }
    }

    /// True when this image is backed by a live memory mapping rather than
    /// an owned buffer — used by benchmarks to verify which path ran.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned(_) => false,
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
        }
    }
}

impl std::ops::Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(unix)]
impl Drop for FileBytes {
    fn drop(&mut self) {
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once, here.
            unsafe {
                let _ = sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("serr-store-mmap-{tag}-{}", std::process::id()))
    }

    #[test]
    fn map_and_read_agree_byte_for_byte() {
        let path = temp_path("agree");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        fs::write(&path, &payload).expect("write");
        let mapped = FileBytes::map(&path).expect("map");
        let read = FileBytes::read(&path).expect("read");
        assert_eq!(&*mapped, payload.as_slice());
        assert_eq!(&*read, payload.as_slice());
        #[cfg(unix)]
        assert!(mapped.is_mapped());
        assert!(!read.is_mapped());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_as_empty_slice() {
        let path = temp_path("empty");
        fs::write(&path, b"").expect("write");
        let mapped = FileBytes::map(&path).expect("map");
        assert!(mapped.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let path = temp_path("missing-never-created");
        assert!(matches!(FileBytes::map(&path), Err(SerrError::Io { .. })));
        assert!(matches!(FileBytes::read(&path), Err(SerrError::Io { .. })));
    }
}
