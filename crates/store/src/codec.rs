//! Explicit `Serializer`/`Deserializer` pairs for the primitive shapes the
//! store traffics in.
//!
//! Following the massa serializer idiom, every on-disk type gets a pair of
//! small stateless objects rather than a blanket derive: the pair *is* the
//! wire contract, round-trip equality is proptested per pair, and decoders
//! are bounds-checked so corrupt input yields a typed error, never a panic.
//!
//! Floats are carried as raw little-endian `f64` bits — no decimal
//! formatting or parsing on the resume path — which is what makes binary
//! journals bit-identical to the values the sweep computed, NaN payloads
//! included.

use crate::varint;
use serr_types::SerrError;

/// Encodes a `T` onto the end of a byte buffer.
pub trait Serializer<T: ?Sized> {
    /// Appends the encoding of `value` to `buf`.
    ///
    /// # Errors
    ///
    /// Implementations that cannot fail (all the primitive pairs here)
    /// always return `Ok`; the `Result` exists so composite serializers can
    /// reject unrepresentable values with a typed error.
    fn serialize(&self, value: &T, buf: &mut Vec<u8>) -> Result<(), SerrError>;
}

/// Decodes a `T` from the front of a byte slice, advancing it.
pub trait Deserializer<T> {
    /// Reads one `T`, advancing `input` past the consumed bytes.
    ///
    /// # Errors
    ///
    /// [`SerrError::StoreCorrupt`] on truncated or malformed input. Must
    /// never panic, whatever the bytes.
    fn deserialize(&self, input: &mut &[u8]) -> Result<T, SerrError>;
}

/// Takes `n` bytes off the front of `input`, with a typed error instead of
/// a slice panic when the input is short.
pub(crate) fn take<'a>(input: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], SerrError> {
    if input.len() < n {
        return Err(SerrError::store_corrupt(
            what,
            format!("need {n} bytes, {} remain", input.len()),
        ));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// `u64` as an LEB128 varint.
#[derive(Debug, Clone, Copy, Default)]
pub struct VarU64Serializer;

/// Decoder paired with [`VarU64Serializer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VarU64Deserializer;

impl Serializer<u64> for VarU64Serializer {
    fn serialize(&self, value: &u64, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        varint::write_u64(buf, *value);
        Ok(())
    }
}

impl Deserializer<u64> for VarU64Deserializer {
    fn deserialize(&self, input: &mut &[u8]) -> Result<u64, SerrError> {
        varint::read_u64(input)
    }
}

/// `f64` as its raw little-endian bit pattern: 8 bytes, bit-exact round
/// trip for every value including signed zeros, infinities, and NaN
/// payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct F64RawSerializer;

/// Decoder paired with [`F64RawSerializer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct F64RawDeserializer;

impl Serializer<f64> for F64RawSerializer {
    fn serialize(&self, value: &f64, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        buf.extend_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

impl Deserializer<f64> for F64RawDeserializer {
    fn deserialize(&self, input: &mut &[u8]) -> Result<f64, SerrError> {
        let bytes = take(input, 8, "f64")?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_le_bytes(raw))
    }
}

/// UTF-8 string with a varint byte-length prefix.
#[derive(Debug, Clone, Copy, Default)]
pub struct StringSerializer;

/// Decoder paired with [`StringSerializer`]; rejects invalid UTF-8.
#[derive(Debug, Clone, Copy, Default)]
pub struct StringDeserializer;

impl Serializer<str> for StringSerializer {
    fn serialize(&self, value: &str, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        varint::write_u64(buf, value.len() as u64);
        buf.extend_from_slice(value.as_bytes());
        Ok(())
    }
}

impl Serializer<String> for StringSerializer {
    fn serialize(&self, value: &String, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        Serializer::<str>::serialize(self, value.as_str(), buf)
    }
}

impl Deserializer<String> for StringDeserializer {
    fn deserialize(&self, input: &mut &[u8]) -> Result<String, SerrError> {
        let len = varint::read_u64(input)?;
        let len = usize::try_from(len)
            .map_err(|_| SerrError::store_corrupt("string", "length exceeds address space"))?;
        let bytes = take(input, len, "string")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SerrError::store_corrupt("string", e.to_string()))
    }
}

/// Raw byte string with a varint length prefix.
#[derive(Debug, Clone, Copy, Default)]
pub struct BytesSerializer;

/// Decoder paired with [`BytesSerializer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BytesDeserializer;

impl Serializer<[u8]> for BytesSerializer {
    fn serialize(&self, value: &[u8], buf: &mut Vec<u8>) -> Result<(), SerrError> {
        varint::write_u64(buf, value.len() as u64);
        buf.extend_from_slice(value);
        Ok(())
    }
}

impl Serializer<Vec<u8>> for BytesSerializer {
    fn serialize(&self, value: &Vec<u8>, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        Serializer::<[u8]>::serialize(self, value.as_slice(), buf)
    }
}

impl Deserializer<Vec<u8>> for BytesDeserializer {
    fn deserialize(&self, input: &mut &[u8]) -> Result<Vec<u8>, SerrError> {
        let len = varint::read_u64(input)?;
        let len = usize::try_from(len)
            .map_err(|_| SerrError::store_corrupt("bytes", "length exceeds address space"))?;
        Ok(take(input, len, "bytes")?.to_vec())
    }
}

/// `Vec<T>` as a varint count followed by each element through an inner
/// serializer — the composition combinator for nested shapes.
#[derive(Debug, Clone, Copy, Default)]
pub struct VecSerializer<S>(pub S);

/// Decoder paired with [`VecSerializer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VecDeserializer<D>(pub D);

impl<T, S: Serializer<T>> Serializer<Vec<T>> for VecSerializer<S> {
    fn serialize(&self, value: &Vec<T>, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        varint::write_u64(buf, value.len() as u64);
        for item in value {
            self.0.serialize(item, buf)?;
        }
        Ok(())
    }
}

impl<T, D: Deserializer<T>> Deserializer<Vec<T>> for VecDeserializer<D> {
    fn deserialize(&self, input: &mut &[u8]) -> Result<Vec<T>, SerrError> {
        let count = varint::read_u64(input)?;
        let count = usize::try_from(count)
            .map_err(|_| SerrError::store_corrupt("vec", "count exceeds address space"))?;
        // A corrupt count must not allocate unboundedly: every element costs
        // at least one input byte, so a count past the remaining input is
        // corrupt by construction.
        if count > input.len() {
            return Err(SerrError::store_corrupt(
                "vec",
                format!("count {count} exceeds {} remaining bytes", input.len()),
            ));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.0.deserialize(input)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T, S, D>(ser: &S, de: &D, value: &T) -> T
    where
        S: Serializer<T>,
        D: Deserializer<T>,
    {
        let mut buf = Vec::new();
        ser.serialize(value, &mut buf).expect("serialize");
        let mut input = buf.as_slice();
        let out = de.deserialize(&mut input).expect("deserialize");
        assert!(input.is_empty(), "trailing bytes after decode");
        out
    }

    #[test]
    fn f64_round_trip_is_bit_exact_for_special_values() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, f64::MIN_POSITIVE] {
            let out = round_trip(&F64RawSerializer, &F64RawDeserializer, &v);
            assert_eq!(out.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut input = buf.as_slice();
        assert!(StringDeserializer.deserialize(&mut input).is_err());
    }

    #[test]
    fn vec_rejects_absurd_counts_without_allocating() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, u64::MAX / 2);
        let mut input = buf.as_slice();
        let r: Result<Vec<u64>, _> = VecDeserializer(VarU64Deserializer).deserialize(&mut input);
        assert!(r.is_err());
    }

    proptest! {
        #[test]
        fn var_u64_pair_round_trips(v in any::<u64>()) {
            prop_assert_eq!(round_trip(&VarU64Serializer, &VarU64Deserializer, &v), v);
        }

        #[test]
        fn f64_pair_round_trips_bit_exact(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let out = round_trip(&F64RawSerializer, &F64RawDeserializer, &v);
            prop_assert_eq!(out.to_bits(), bits);
        }

        #[test]
        fn string_pair_round_trips(s in ".{0,64}") {
            prop_assert_eq!(round_trip(&StringSerializer, &StringDeserializer, &s), s);
        }

        #[test]
        fn bytes_pair_round_trips(b in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(round_trip(&BytesSerializer, &BytesDeserializer, &b), b);
        }

        #[test]
        fn vec_f64_pair_round_trips(v in proptest::collection::vec(any::<u64>(), 0..32)) {
            let v: Vec<f64> = v.into_iter().map(f64::from_bits).collect();
            let out = round_trip(&VecSerializer(F64RawSerializer), &VecDeserializer(F64RawDeserializer), &v);
            let a: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn primitive_decoders_never_panic_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut i = bytes.as_slice();
            let _ = VarU64Deserializer.deserialize(&mut i);
            let mut i = bytes.as_slice();
            let _ = F64RawDeserializer.deserialize(&mut i);
            let mut i = bytes.as_slice();
            let _ = StringDeserializer.deserialize(&mut i);
            let mut i = bytes.as_slice();
            let _ = BytesDeserializer.deserialize(&mut i);
            let mut i = bytes.as_slice();
            let _: Result<Vec<f64>, _> = VecDeserializer(F64RawDeserializer).deserialize(&mut i);
        }
    }
}
