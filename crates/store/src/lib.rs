//! `serr-store` — the durable binary container every crash-safe artifact in
//! the workspace writes: checkpoint journals, the trace cache, and the
//! serve result/pending journals.
//!
//! One versioned little-endian format (magic + format version + typed
//! record stream), CRC-32 on every page header and payload, varint record
//! lengths, and prefix-sum page indices. Two write disciplines:
//!
//! * **Batch** ([`StoreBuilder`] + [`write_atomic`]): build the whole image
//!   in memory, commit via tmp-file + rename — readers see the old file or
//!   the complete new one, never a torn intermediate. Used by the trace
//!   cache.
//! * **Append** ([`PageJournal`]): one fsynced page per append, so a crash
//!   tears at most the in-flight page. On reopen the torn tail is detected
//!   by checksum, truncated back to the last valid page boundary, and
//!   appends resume there. Used by checkpoint and serve journals.
//!
//! The recovery contract, everywhere: **never panic** on foreign bytes —
//! return a typed [`SerrError`] (damaged/missing header, wrong format
//! version) or a degraded-but-usable prefix (any damage at or after the
//! first page).
//!
//! Record payloads are opaque here; the [`codec`] module provides the
//! explicit [`Serializer`]/[`Deserializer`] pairs callers compose to give
//! them meaning, with floats as raw little-endian bits so resumed values
//! are bit-identical to what was computed.

#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod mmap;
pub mod pages;
pub mod varint;

pub use codec::{Deserializer, Serializer};
pub use crc32::crc32;
pub use mmap::FileBytes;
pub use pages::{
    decode_header, encode_header, encode_page, forge_format_version, inspect, read_store, recover,
    write_atomic, Header, JournalRecovery, PageInfo, PageJournal, Recovered, StoreBuilder,
    StoreReport, DEFAULT_PAGE_LIMIT, FORMAT_VERSION, FORMAT_VERSION_RANGE, HEADER_LEN, MAGIC,
    PAGE_HEADER_LEN,
};

/// Stream kinds currently assigned. Kept in one place so `serr store
/// inspect` can name them and no two callers collide.
pub mod kind {
    /// `serr-core::checkpoint` sweep journals (rows keyed by point index).
    pub const CHECKPOINT_JOURNAL: u32 = 1;
    /// The trace cache: one simulation output per file.
    pub const TRACE_CACHE: u32 = 2;

    /// Human label for a stream kind, for diagnostics.
    #[must_use]
    pub fn label(kind: u32) -> &'static str {
        match kind {
            CHECKPOINT_JOURNAL => "checkpoint-journal",
            TRACE_CACHE => "trace-cache",
            _ => "unknown",
        }
    }
}
