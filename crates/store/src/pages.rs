//! The on-disk container: a fixed header followed by CRC-guarded pages of
//! varint-length-prefixed records.
//!
//! ```text
//! file   := header page*
//! header := magic[8]="SERRSTO1" format:u32 kind:u32 app:u32 header_crc:u32
//! page   := payload_len:u32 records:u32 first_index:u64
//!           payload_crc:u32 page_header_crc:u32 payload[payload_len]
//! payload:= (varint(len) bytes[len])*        -- `records` of them
//! ```
//!
//! All integers little-endian. `first_index` is the prefix sum of record
//! counts over the preceding pages, so any page states which record indices
//! it holds without decoding its predecessors — a reader can both seek and
//! detect a dropped page.
//!
//! Recovery contract: a damaged or missing header is a typed error (the
//! file is not a usable store); damage at or after the first page degrades
//! to the longest valid prefix — the scan stops at the first page whose
//! header CRC, payload CRC, prefix sum, or record framing fails, and
//! reports the byte offset so a journal can truncate and resume there.
//! Nothing in this module panics on foreign bytes.

use crate::crc32::crc32;
use crate::varint;
use serr_types::SerrError;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Leading magic, byte-for-byte.
pub const MAGIC: [u8; 8] = *b"SERRSTO1";

/// Byte length of the file header.
pub const HEADER_LEN: usize = 24;

/// Byte length of a page header.
pub const PAGE_HEADER_LEN: usize = 24;

/// Byte range of the `format` field inside the header — exposed so chaos
/// tooling can forge a stale-version file with a *valid* checksum (the
/// interesting corruption CRC alone cannot catch).
pub const FORMAT_VERSION_RANGE: std::ops::Range<usize> = 8..12;

/// Default page payload target for batch-written stores.
pub const DEFAULT_PAGE_LIMIT: usize = 64 * 1024;

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Decoded file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Container format version (see [`FORMAT_VERSION`]).
    pub format: u32,
    /// Application stream kind (what the records mean).
    pub kind: u32,
    /// Application-level schema version for that kind.
    pub app: u32,
}

/// Encodes a file header for stream `kind` at application version `app`.
#[must_use]
pub fn encode_header(kind: u32, app: u32) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&kind.to_le_bytes());
    out[16..20].copy_from_slice(&app.to_le_bytes());
    let crc = crc32(&out[..20]);
    out[20..24].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Overwrites the header's format-version field *and* refreshes the header
/// CRC, producing a structurally valid header that claims `version`. Chaos
/// and test support: exercises the reader's version check in isolation from
/// its checksum check.
///
/// No-op on buffers shorter than a header.
pub fn forge_format_version(bytes: &mut [u8], version: u32) {
    if bytes.len() < HEADER_LEN {
        return;
    }
    bytes[FORMAT_VERSION_RANGE].copy_from_slice(&version.to_le_bytes());
    let crc = crc32(&bytes[..20]);
    bytes[20..24].copy_from_slice(&crc.to_le_bytes());
}

/// Validates and decodes the header at the front of `bytes`.
///
/// # Errors
///
/// [`SerrError::StoreCorrupt`] on short input, bad magic, or a failed
/// header checksum; [`SerrError::StoreVersion`] when the format version is
/// not [`FORMAT_VERSION`].
pub fn decode_header(bytes: &[u8], site: &str) -> Result<Header, SerrError> {
    if bytes.len() < HEADER_LEN {
        return Err(SerrError::store_corrupt(
            site,
            format!("file is {} bytes, header needs {HEADER_LEN}", bytes.len()),
        ));
    }
    if bytes[..8] != MAGIC {
        return Err(SerrError::store_corrupt(site, "bad magic"));
    }
    let stored = read_u32(bytes, 20);
    let actual = crc32(&bytes[..20]);
    if stored != actual {
        return Err(SerrError::store_corrupt(
            site,
            format!("header checksum mismatch (stored {stored:08x}, computed {actual:08x})"),
        ));
    }
    let format = read_u32(bytes, 8);
    if format != FORMAT_VERSION {
        return Err(SerrError::StoreVersion {
            site: site.to_owned(),
            found: format,
            expected: FORMAT_VERSION,
        });
    }
    Ok(Header { format, kind: read_u32(bytes, 12), app: read_u32(bytes, 16) })
}

/// Frames `payload` holding `records` records whose first global index is
/// `first_index` into a page (header + payload).
#[must_use]
pub fn encode_page(first_index: u64, records: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAGE_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&records.to_le_bytes());
    out.extend_from_slice(&first_index.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out[..20]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One page's metadata as seen by [`recover`] / [`inspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Byte offset of the page header in the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Records in this page.
    pub records: u32,
    /// Global index of the page's first record (prefix sum).
    pub first_index: u64,
    /// Stored payload CRC-32.
    pub payload_crc: u32,
}

/// Result of scanning a store image: the valid prefix plus where (and
/// whether) damage stopped the scan.
#[derive(Debug)]
pub struct Recovered<'a> {
    /// The decoded file header.
    pub header: Header,
    /// Every record in the valid prefix, borrowed from the input image.
    pub records: Vec<&'a [u8]>,
    /// Per-page metadata for the valid prefix.
    pub pages: Vec<PageInfo>,
    /// Byte length of the valid prefix (header + valid pages) — a journal
    /// truncates its file to this before resuming appends.
    pub valid_len: usize,
    /// Why the scan stopped early, if it did.
    pub damage: Option<String>,
}

impl Recovered<'_> {
    /// True when a torn or damaged tail was dropped.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.damage.is_some()
    }
}

/// Scans the store image in `bytes`, returning the longest valid prefix.
///
/// # Errors
///
/// Typed header errors per [`decode_header`]; page-level damage is not an
/// error — the scan stops there and reports the valid prefix.
pub fn recover<'a>(bytes: &'a [u8], site: &str) -> Result<Recovered<'a>, SerrError> {
    let header = decode_header(bytes, site)?;
    let mut records: Vec<&'a [u8]> = Vec::new();
    let mut pages = Vec::new();
    let mut offset = HEADER_LEN;
    let mut damage = None;

    'scan: while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < PAGE_HEADER_LEN {
            damage = Some(format!("torn page header at {offset} ({remaining} bytes)"));
            break;
        }
        let head = &bytes[offset..offset + PAGE_HEADER_LEN];
        let stored_header_crc = read_u32(head, 20);
        if stored_header_crc != crc32(&head[..20]) {
            damage = Some(format!("page header checksum mismatch at {offset}"));
            break;
        }
        let payload_len = read_u32(head, 0) as usize;
        let page_records = read_u32(head, 4);
        let first_index = read_u64_at(head, 8);
        let payload_crc = read_u32(head, 16);
        if first_index != records.len() as u64 {
            damage = Some(format!(
                "page at {offset} claims first record {first_index}, expected {}",
                records.len()
            ));
            break;
        }
        let payload_start = offset + PAGE_HEADER_LEN;
        if payload_len > bytes.len() - payload_start {
            damage = Some(format!("torn page payload at {offset}"));
            break;
        }
        let payload = &bytes[payload_start..payload_start + payload_len];
        if crc32(payload) != payload_crc {
            damage = Some(format!("page payload checksum mismatch at {offset}"));
            break;
        }
        let mut cursor = payload;
        let mut page_parsed: Vec<&'a [u8]> = Vec::with_capacity(page_records as usize);
        for _ in 0..page_records {
            let Ok(len) = varint::read_u64(&mut cursor) else {
                damage = Some(format!("bad record length varint in page at {offset}"));
                break 'scan;
            };
            let Ok(len) = usize::try_from(len) else {
                damage = Some(format!("oversized record length in page at {offset}"));
                break 'scan;
            };
            if len > cursor.len() {
                damage = Some(format!("record overruns page payload at {offset}"));
                break 'scan;
            }
            let (rec, rest) = cursor.split_at(len);
            page_parsed.push(rec);
            cursor = rest;
        }
        if !cursor.is_empty() {
            damage = Some(format!("trailing bytes after last record in page at {offset}"));
            break;
        }
        records.extend_from_slice(&page_parsed);
        pages.push(PageInfo {
            offset,
            payload_len: payload_len as u32,
            records: page_records,
            first_index,
            payload_crc,
        });
        offset = payload_start + payload_len;
    }

    let valid_len =
        pages.last().map_or(HEADER_LEN, |p| p.offset + PAGE_HEADER_LEN + p.payload_len as usize);
    Ok(Recovered { header, records, pages, valid_len, damage })
}

/// Batch writer: accumulates records into pages of roughly
/// [`DEFAULT_PAGE_LIMIT`] payload bytes, then emits the whole store image.
#[derive(Debug)]
pub struct StoreBuilder {
    out: Vec<u8>,
    page: Vec<u8>,
    page_records: u32,
    total_records: u64,
    page_limit: usize,
}

impl StoreBuilder {
    /// Starts a store image for stream `kind` at application version `app`.
    #[must_use]
    pub fn new(kind: u32, app: u32) -> StoreBuilder {
        StoreBuilder::with_page_limit(kind, app, DEFAULT_PAGE_LIMIT)
    }

    /// As [`StoreBuilder::new`] with an explicit page payload target (records
    /// are never split across pages, so a single large record makes a large
    /// page).
    #[must_use]
    pub fn with_page_limit(kind: u32, app: u32, page_limit: usize) -> StoreBuilder {
        StoreBuilder {
            out: encode_header(kind, app).to_vec(),
            page: Vec::new(),
            page_records: 0,
            total_records: 0,
            page_limit: page_limit.max(1),
        }
    }

    /// Appends one record.
    pub fn push_record(&mut self, record: &[u8]) {
        varint::write_u64(&mut self.page, record.len() as u64);
        self.page.extend_from_slice(record);
        self.page_records += 1;
        if self.page.len() >= self.page_limit {
            self.flush_page();
        }
    }

    fn flush_page(&mut self) {
        if self.page_records == 0 {
            return;
        }
        let first_index = self.total_records;
        self.total_records += u64::from(self.page_records);
        let page = encode_page(first_index, self.page_records, &self.page);
        self.out.extend_from_slice(&page);
        self.page.clear();
        self.page_records = 0;
    }

    /// Flushes the open page and returns the complete store image.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_page();
        self.out
    }
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling is written and
/// fsynced, then renamed over the destination, so readers observe either
/// the old file or the complete new one — never a torn intermediate.
///
/// # Errors
///
/// [`SerrError::Io`] naming the failing step.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SerrError> {
    let site = path.display().to_string();
    let tmp = path.with_extension("tmp");
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    };
    write().map_err(|e| {
        let _ = fs::remove_file(&tmp);
        SerrError::io(format!("write store {site}"), e.to_string())
    })
}

/// Reads and recovers the store at `path` into owned records.
///
/// # Errors
///
/// [`SerrError::Io`] when the file cannot be read, plus the header errors
/// of [`recover`].
pub fn read_store(path: &Path) -> Result<(Header, Vec<Vec<u8>>, bool), SerrError> {
    let site = path.display().to_string();
    let bytes =
        fs::read(path).map_err(|e| SerrError::io(format!("read store {site}"), e.to_string()))?;
    let rec = recover(&bytes, &site)?;
    let records = rec.records.iter().map(|r| r.to_vec()).collect();
    Ok((rec.header, records, rec.truncated()))
}

/// What [`PageJournal::open`] found on disk.
#[derive(Debug)]
pub struct JournalRecovery {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn or damaged tail was truncated away.
    pub truncated: bool,
    /// True when the file did not exist (or was empty) and was created.
    pub created: bool,
}

/// Append-mode store: one fsynced page per [`PageJournal::append`] call, so
/// a crash tears at most the page being written — which recovery then
/// truncates back to the last valid boundary.
#[derive(Debug)]
pub struct PageJournal {
    file: fs::File,
    next_index: u64,
}

impl PageJournal {
    /// Opens (creating if absent) the journal at `path` for stream `kind`
    /// at application version `app`, recovering existing contents and
    /// truncating any torn tail so subsequent appends land on a page
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`SerrError::Io`] on filesystem failure; [`SerrError::StoreCorrupt`]
    /// / [`SerrError::StoreVersion`] when an existing non-empty file has a
    /// damaged or foreign header (the caller decides whether to reset it);
    /// [`SerrError::StoreCorrupt`] when the header belongs to a different
    /// stream `kind` or application version.
    pub fn open(
        path: &Path,
        kind: u32,
        app: u32,
    ) -> Result<(PageJournal, JournalRecovery), SerrError> {
        let site = path.display().to_string();
        let io = |step: &str| {
            let s = site.clone();
            let step = step.to_owned();
            move |e: std::io::Error| SerrError::io(format!("{step} {s}"), e.to_string())
        };
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io("open journal store"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io("read journal store"))?;

        if bytes.is_empty() {
            file.write_all(&encode_header(kind, app)).map_err(io("write journal header"))?;
            file.sync_all().map_err(io("sync journal header"))?;
            let journal = PageJournal { file, next_index: 0 };
            return Ok((
                journal,
                JournalRecovery { records: Vec::new(), truncated: false, created: true },
            ));
        }

        let rec = recover(&bytes, &site)?;
        if rec.header.kind != kind || rec.header.app != app {
            return Err(SerrError::store_corrupt(
                site,
                format!(
                    "stream kind/app {}/{} does not match expected {kind}/{app}",
                    rec.header.kind, rec.header.app
                ),
            ));
        }
        let truncated = rec.truncated();
        let next_index = rec.records.len() as u64;
        let records: Vec<Vec<u8>> = rec.records.iter().map(|r| r.to_vec()).collect();
        let valid_len = rec.valid_len as u64;
        if truncated {
            file.set_len(valid_len).map_err(io("truncate torn journal tail"))?;
            file.sync_all().map_err(io("sync truncated journal"))?;
        }
        file.seek(SeekFrom::Start(valid_len)).map_err(io("seek journal end"))?;
        Ok((
            PageJournal { file, next_index },
            JournalRecovery { records, truncated, created: false },
        ))
    }

    /// Records appended so far (recovered + appended this session).
    #[must_use]
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Appends `records` as one page and fsyncs it.
    ///
    /// # Errors
    ///
    /// [`SerrError::Io`] on write or sync failure.
    pub fn append(&mut self, records: &[&[u8]]) -> Result<(), SerrError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::new();
        for rec in records {
            varint::write_u64(&mut payload, rec.len() as u64);
            payload.extend_from_slice(rec);
        }
        let count = u32::try_from(records.len()).map_err(|_| {
            SerrError::store_corrupt("journal append", "more than u32::MAX records in one page")
        })?;
        let page = encode_page(self.next_index, count, &payload);
        self.file
            .write_all(&page)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| SerrError::io("append journal page", e.to_string()))?;
        self.next_index += u64::from(count);
        Ok(())
    }
}

/// Full diagnostic scan of a store file, for `serr store inspect`.
#[derive(Debug)]
pub struct StoreReport {
    /// Decoded header.
    pub header: Header,
    /// File length in bytes.
    pub file_len: u64,
    /// Valid pages, in order.
    pub pages: Vec<PageInfo>,
    /// Total records across valid pages.
    pub records: u64,
    /// Description of tail damage, if the scan stopped early.
    pub damage: Option<String>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
}

/// Scans `path` and reports header fields, per-page CRCs, and record
/// counts without interpreting record contents.
///
/// # Errors
///
/// [`SerrError::Io`] when the file cannot be read, plus the header errors
/// of [`recover`].
pub fn inspect(path: &Path) -> Result<StoreReport, SerrError> {
    let site = path.display().to_string();
    let bytes =
        fs::read(path).map_err(|e| SerrError::io(format!("read store {site}"), e.to_string()))?;
    let rec = recover(&bytes, &site)?;
    Ok(StoreReport {
        header: rec.header,
        file_len: bytes.len() as u64,
        records: rec.records.len() as u64,
        pages: rec.pages,
        damage: rec.damage,
        valid_len: rec.valid_len as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(records: &[Vec<u8>], page_limit: usize) -> Vec<u8> {
        let mut b = StoreBuilder::with_page_limit(7, 3, page_limit);
        for r in records {
            b.push_record(r);
        }
        b.finish()
    }

    #[test]
    fn empty_store_is_just_a_header() {
        let image = StoreBuilder::new(1, 2).finish();
        assert_eq!(image.len(), HEADER_LEN);
        let rec = recover(&image, "t").expect("recover");
        assert_eq!(rec.header, Header { format: FORMAT_VERSION, kind: 1, app: 2 });
        assert!(rec.records.is_empty());
        assert!(!rec.truncated());
    }

    #[test]
    fn multi_page_store_round_trips_with_prefix_sums() {
        let records: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let image = build(&records, 32); // force many pages
        let rec = recover(&image, "t").expect("recover");
        assert!(rec.pages.len() > 5, "expected multiple pages, got {}", rec.pages.len());
        assert_eq!(rec.records.len(), 100);
        for (got, want) in rec.records.iter().zip(&records) {
            assert_eq!(got, &want.as_slice());
        }
        let mut cum = 0u64;
        for p in &rec.pages {
            assert_eq!(p.first_index, cum);
            cum += u64::from(p.records);
        }
        assert_eq!(rec.valid_len, image.len());
    }

    #[test]
    fn torn_tail_degrades_to_prefix() {
        let records: Vec<Vec<u8>> = (0..40u32).map(|i| vec![i as u8; 5]).collect();
        let image = build(&records, 64);
        let full = recover(&image, "t").expect("recover");
        let second_page = full.pages[1].offset;
        // Cut mid-way through the second page.
        let cut = &image[..second_page + PAGE_HEADER_LEN + 3];
        let rec = recover(cut, "t").expect("recover");
        assert!(rec.truncated());
        assert_eq!(rec.records.len() as u32, full.pages[0].records);
        assert_eq!(rec.valid_len, second_page);
    }

    #[test]
    fn header_damage_is_a_typed_error() {
        let mut image = build(&[vec![1, 2, 3]], 64);
        image[3] ^= 0x40; // magic
        assert!(matches!(recover(&image, "t"), Err(SerrError::StoreCorrupt { .. })));

        let mut image = build(&[vec![1, 2, 3]], 64);
        image[17] ^= 0x01; // app version byte -> header CRC mismatch
        assert!(matches!(recover(&image, "t"), Err(SerrError::StoreCorrupt { .. })));
    }

    #[test]
    fn forged_stale_version_is_a_typed_version_error() {
        let mut image = build(&[vec![9; 4]], 64);
        forge_format_version(&mut image, FORMAT_VERSION + 7);
        match recover(&image, "t") {
            Err(SerrError::StoreVersion { found, expected, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 7);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected StoreVersion, got {other:?}"),
        }
    }

    #[test]
    fn mid_file_flip_stops_scan_at_damaged_page() {
        let records: Vec<Vec<u8>> = (0..60u32).map(|i| vec![i as u8; 7]).collect();
        let image = build(&records, 64);
        let full = recover(&image, "t").expect("recover");
        assert!(full.pages.len() >= 3);
        let victim = full.pages[1];
        let mut dirty = image.clone();
        dirty[victim.offset + PAGE_HEADER_LEN + 2] ^= 0x10;
        let rec = recover(&dirty, "t").expect("recover");
        assert!(rec.truncated());
        assert_eq!(rec.pages.len(), 1);
        assert_eq!(rec.valid_len, victim.offset);
    }

    #[test]
    fn page_journal_appends_recovers_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("serr-store-pj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("j.store");
        let _ = std::fs::remove_file(&path);

        let (mut j, rec) = PageJournal::open(&path, 4, 1).expect("open fresh");
        assert!(rec.created && rec.records.is_empty());
        for i in 0..10u8 {
            j.append(&[&[i; 9][..]]).expect("append");
        }
        drop(j);

        // Tear the last page.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(len - 5).expect("tear");
        drop(f);

        let (mut j, rec) = PageJournal::open(&path, 4, 1).expect("reopen");
        assert!(rec.truncated);
        assert_eq!(rec.records.len(), 9);
        assert_eq!(j.next_index(), 9);
        j.append(&[&[99u8; 9][..]]).expect("append after recovery");
        drop(j);

        let (_, rec) = PageJournal::open(&path, 4, 1).expect("final open");
        assert!(!rec.truncated);
        assert_eq!(rec.records.len(), 10);
        assert_eq!(rec.records[9], vec![99u8; 9]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn page_journal_rejects_mismatched_kind() {
        let dir = std::env::temp_dir().join(format!("serr-store-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("k.store");
        let _ = std::fs::remove_file(&path);
        let (j, _) = PageJournal::open(&path, 4, 1).expect("open");
        drop(j);
        assert!(matches!(PageJournal::open(&path, 5, 1), Err(SerrError::StoreCorrupt { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_atomic_then_read_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("serr-store-at-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("a.store");
        let records: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"beta".to_vec()];
        let image = build(&records, 1024);
        write_atomic(&path, &image).expect("write");
        assert!(!path.with_extension("tmp").exists());
        let (header, got, truncated) = read_store(&path).expect("read");
        assert_eq!(header.kind, 7);
        assert_eq!(got, records);
        assert!(!truncated);
        let _ = std::fs::remove_file(&path);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn build_recover_round_trips(
            records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..50),
            page_limit in 1usize..256,
        ) {
            let image = build(&records, page_limit);
            let rec = recover(&image, "t").expect("recover");
            prop_assert!(!rec.truncated());
            prop_assert_eq!(rec.records.len(), records.len());
            for (got, want) in rec.records.iter().zip(&records) {
                prop_assert_eq!(*got, want.as_slice());
            }
        }

        #[test]
        fn recovery_never_panics_on_mutations(
            records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..20),
            page_limit in 1usize..128,
            flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..6),
            cut in any::<u16>(),
        ) {
            let mut image = build(&records, page_limit);
            for (pos, bit) in flips {
                let i = pos as usize % image.len();
                image[i] ^= 1 << bit;
            }
            let cut = cut as usize % (image.len() + 1);
            let image = &image[..cut];
            // Must return a typed error or a degraded prefix — never panic.
            if let Ok(rec) = recover(image, "fuzz") {
                prop_assert!(rec.records.len() <= records.len() + image.len());
            }
        }

        #[test]
        fn truncation_always_yields_a_valid_prefix(
            records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..30),
            page_limit in 1usize..64,
            cut in any::<u16>(),
        ) {
            let image = build(&records, page_limit);
            let cut = HEADER_LEN + (cut as usize % (image.len() - HEADER_LEN + 1));
            let rec = recover(&image[..cut], "t").expect("header intact");
            // Whatever survived must be an exact prefix of the originals.
            for (got, want) in rec.records.iter().zip(&records) {
                prop_assert_eq!(*got, want.as_slice());
            }
            prop_assert!(rec.valid_len <= cut);
        }
    }
}
