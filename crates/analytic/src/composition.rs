//! Section 3.2.1: in the `L·λ → 0` limit, the time to failure after
//! architectural masking is *exactly* exponential with rate `λ·AVF`.
//!
//! The paper's derivation: `X = Σᵢ₌₁^K tᵢ` where the `tᵢ` are Exp(λ)
//! inter-arrival times and `K` is geometric with success probability AVF
//! (the first unmasked error). The sum of `k` exponentials is Erlang-k, and
//! the geometric mixture of Erlangs collapses to `Exp(λ·AVF)`.

use serr_numeric::special::SQRT_PI;

/// The Erlang-`n` density `λ(λx)^{n−1} e^{−λx} / (n−1)!` — the distribution
/// of a sum of `n` independent `Exp(λ)` variables (paper, citing Trivedi).
///
/// Computed in log space so large `n` does not overflow the factorial.
///
/// # Panics
///
/// Panics unless `n ≥ 1`, `lambda > 0`, and `x ≥ 0`.
#[must_use]
pub fn erlang_pdf(n: u32, lambda: f64, x: f64) -> f64 {
    assert!(n >= 1, "Erlang shape must be >= 1");
    assert!(lambda > 0.0, "rate must be positive");
    assert!(x >= 0.0, "Erlang support is x >= 0");
    if x == 0.0 {
        return if n == 1 { lambda } else { 0.0 };
    }
    let log_pdf =
        lambda.ln() + f64::from(n - 1) * (lambda * x).ln() - lambda * x - ln_factorial(n - 1);
    log_pdf.exp()
}

/// The geometric-mixture density
/// `f_X(x) = Σₖ (1−AVF)^{k−1}·AVF · Erlang_k(λ, x)`,
/// truncated when terms fall below machine precision.
///
/// The paper shows this equals `λ·AVF·e^{−λ·AVF·x}` — see
/// [`exponential_avf_pdf`] and the tests proving the collapse.
///
/// # Panics
///
/// Panics unless `avf ∈ (0, 1]`, `lambda > 0`, and `x ≥ 0`.
#[must_use]
pub fn geometric_erlang_mixture_pdf(avf: f64, lambda: f64, x: f64) -> f64 {
    assert!(avf > 0.0 && avf <= 1.0, "AVF must lie in (0,1]");
    assert!(lambda > 0.0, "rate must be positive");
    assert!(x >= 0.0, "support is x >= 0");
    // Σₖ (1-AVF)^{k-1} AVF λ(λx)^{k-1}e^{-λx}/(k-1)!
    //  = AVF λ e^{-λx} Σⱼ ((1-AVF)λx)^j / j!   — sum directly.
    let z = (1.0 - avf) * lambda * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    for j in 1..10_000 {
        term *= z / f64::from(j);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    avf * lambda * (-lambda * x).exp() * sum
}

/// The closed form the mixture collapses to: `λ·AVF·e^{−λ·AVF·x}`.
///
/// # Panics
///
/// Panics unless `avf ∈ (0, 1]` and `lambda > 0`.
#[must_use]
pub fn exponential_avf_pdf(avf: f64, lambda: f64, x: f64) -> f64 {
    assert!(avf > 0.0 && avf <= 1.0, "AVF must lie in (0,1]");
    assert!(lambda > 0.0, "rate must be positive");
    avf * lambda * (-avf * lambda * x).exp()
}

/// `ln(n!)` via Stirling's series for large `n`, exact accumulation below 32.
fn ln_factorial(n: u32) -> f64 {
    if n < 32 {
        (2..=u64::from(n)).map(|k| (k as f64).ln()).sum()
    } else {
        let x = f64::from(n) + 1.0;
        // Stirling: ln Γ(x) ≈ (x-1/2)ln x − x + ln(2π)/2 + 1/(12x) − 1/(360x³)
        (x - 0.5) * x.ln() - x + 0.5 * (2.0 * SQRT_PI * SQRT_PI).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x.powi(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serr_numeric::quad::integrate_to_infinity;

    #[test]
    fn erlang_1_is_exponential() {
        for &x in &[0.0, 0.5, 2.0] {
            assert!((erlang_pdf(1, 1.5, x) - 1.5 * (-1.5 * x).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_normalizes() {
        for n in [1u32, 2, 5, 20] {
            let total = integrate_to_infinity(|x| erlang_pdf(n, 0.8, x), 1e-12).unwrap();
            assert!((total - 1.0).abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn erlang_mean_is_n_over_lambda() {
        for n in [1u32, 3, 10] {
            let mean = integrate_to_infinity(|x| x * erlang_pdf(n, 2.0, x), 1e-12).unwrap();
            assert!((mean - f64::from(n) / 2.0).abs() < 1e-7, "n={n}");
        }
    }

    #[test]
    fn ln_factorial_exact_vs_stirling_continuous() {
        // The two branches must agree near the crossover.
        let exact: f64 = (2..=31u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(31) - exact).abs() < 1e-10);
        let exact32: f64 = (2..=32u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(32) - exact32).abs() < 1e-8);
    }

    proptest! {
        #[test]
        fn mixture_collapses_to_exponential(
            avf in 0.05f64..1.0,
            lambda in 0.1f64..5.0,
            x in 0.0f64..20.0,
        ) {
            // The heart of Section 3.2.1.
            let mixture = geometric_erlang_mixture_pdf(avf, lambda, x);
            let closed = exponential_avf_pdf(avf, lambda, x);
            let scale = closed.max(1e-300);
            prop_assert!(
                ((mixture - closed) / scale).abs() < 1e-9,
                "avf={} λ={} x={}: {} vs {}", avf, lambda, x, mixture, closed
            );
        }
    }

    #[test]
    fn mixture_mean_is_avf_derated_mttf() {
        let (avf, lambda) = (0.25, 0.5);
        let mean =
            integrate_to_infinity(|x| x * geometric_erlang_mixture_pdf(avf, lambda, x), 1e-12)
                .unwrap();
        assert!((mean - 1.0 / (avf * lambda)).abs() < 1e-6);
    }
}
