//! Exact first-principles MTTF for any periodic vulnerability trace.
//!
//! Under the workspace masking model, unmasked raw errors form an
//! inhomogeneous Poisson process with intensity `λ·v(t)` (raw errors are
//! Poisson with rate `λ`; one at cycle `c` fails with probability `v(c)`,
//! which is Poisson thinning). The time to first failure `X` therefore has
//! survival function `P(X > t) = e^{−λU(t)}` with `U(t) = ∫₀ᵗ v`, and
//!
//! `MTTF = ∫₀^∞ e^{−λU(t)} dt = ∫₀ᴸ e^{−λU(s)} ds / (1 − e^{−λU(L)})`
//!
//! by periodicity of `v`. Since traces are piecewise constant, each span
//! integrates in closed form — no quadrature error, no sampling noise. This
//! is the gold standard the Monte Carlo engine is validated against.

use serr_numeric::special::one_minus_exp_neg;
use serr_trace::VulnerabilityTrace;
use serr_types::{Frequency, Mttf, RawErrorRate, SerrError};

/// Computes the exact MTTF of a component with raw error rate `rate` running
/// the workload described by `trace` at clock frequency `freq`.
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] if the trace is never vulnerable
/// (AVF = 0, so the component cannot fail) and [`SerrError::InvalidConfig`]
/// if the rate is zero.
///
/// ```
/// use serr_analytic::renewal::renewal_mttf;
/// use serr_trace::IntervalTrace;
/// use serr_types::{Frequency, RawErrorRate};
///
/// // A fully-vulnerable component fails at exactly the raw rate.
/// let trace = IntervalTrace::constant(1000, 1.0).unwrap();
/// let rate = RawErrorRate::per_year(10.0);
/// let mttf = renewal_mttf(&trace, rate, Frequency::base()).unwrap();
/// assert!((mttf.as_years() - 0.1).abs() < 1e-9);
/// ```
pub fn renewal_mttf(
    trace: &dyn VulnerabilityTrace,
    rate: RawErrorRate,
    freq: Frequency,
) -> Result<Mttf, SerrError> {
    if rate.is_zero() {
        return Err(SerrError::invalid_config("raw error rate is zero; MTTF is infinite"));
    }
    if trace.is_never_vulnerable() {
        return Err(SerrError::invalid_trace("trace has AVF = 0; the component can never fail"));
    }
    let lambda_cycle = rate.per_second_value() / freq.hz();
    let mttf_cycles = renewal_mttf_cycles(trace, lambda_cycle);
    Ok(Mttf::from_secs(mttf_cycles / freq.hz()))
}

/// The renewal MTTF in cycle units given a per-cycle raw error rate.
///
/// Exposed for unit-agnostic analysis and testing; most callers want
/// [`renewal_mttf`].
///
/// # Panics
///
/// Panics if `lambda_cycle` is not positive or the trace has AVF = 0.
#[must_use]
pub fn renewal_mttf_cycles(trace: &dyn VulnerabilityTrace, lambda_cycle: f64) -> f64 {
    assert!(lambda_cycle > 0.0, "per-cycle rate must be positive");
    let (integral, u_total) = trace.survival_weight(lambda_cycle);
    assert!(u_total > 0.0, "trace has AVF = 0");
    integral / one_minus_exp_neg(lambda_cycle * u_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodic::busy_idle_mttf;
    use proptest::prelude::*;
    use serr_trace::{DenseTrace, IntervalTrace, Segment};

    #[test]
    fn matches_derivation1_closed_form() {
        // The renewal formula and the paper's Derivation 1 must agree on the
        // busy/idle program (time unit = cycles).
        for &(lambda, a, l) in &[(0.01, 100u64, 400u64), (0.5, 3, 10), (2.0, 1, 2)] {
            let trace = IntervalTrace::busy_idle(a, l - a).unwrap();
            let renewal = renewal_mttf_cycles(&trace, lambda);
            let paper = busy_idle_mttf(lambda, a as f64, l as f64);
            assert!(
                ((renewal - paper) / paper).abs() < 1e-10,
                "λ={lambda}, A={a}, L={l}: renewal={renewal}, paper={paper}"
            );
        }
    }

    #[test]
    fn fully_vulnerable_is_exponential_mean() {
        let trace = IntervalTrace::constant(123, 1.0).unwrap();
        for &lambda in &[1e-6, 0.1, 3.0] {
            let m = renewal_mttf_cycles(&trace, lambda);
            assert!(((m - 1.0 / lambda) / m).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_fractional_vulnerability_scales_rate() {
        // v ≡ p everywhere: thinned Poisson with rate λp.
        let trace = IntervalTrace::constant(77, 0.25).unwrap();
        let m = renewal_mttf_cycles(&trace, 0.01);
        assert!(((m - 1.0 / (0.01 * 0.25)) / m).abs() < 1e-12);
    }

    #[test]
    fn avf_limit_for_small_lambda() {
        // λL → 0 ⇒ MTTF → 1/(λ·AVF), the paper's validity regime.
        let trace = IntervalTrace::from_segments(vec![
            Segment::new(10, 1.0).unwrap(),
            Segment::new(20, 0.5).unwrap(),
            Segment::new(70, 0.0).unwrap(),
        ])
        .unwrap();
        let avf = trace.avf();
        let lambda = 1e-12;
        let m = renewal_mttf_cycles(&trace, lambda);
        assert!(((m - 1.0 / (lambda * avf)) * (lambda * avf)).abs() < 1e-6);
    }

    #[test]
    fn dense_and_interval_agree() {
        let levels: Vec<f64> = (0..500).map(|i| ((i / 37) % 3) as f64 / 2.0).collect();
        let dense = DenseTrace::new(levels.clone()).unwrap();
        let interval = IntervalTrace::from_levels(&levels).unwrap();
        let md = renewal_mttf_cycles(&dense, 0.003);
        let mi = renewal_mttf_cycles(&interval, 0.003);
        assert!(((md - mi) / mi).abs() < 1e-9);
    }

    #[test]
    fn typed_api_converts_units() {
        let trace = IntervalTrace::busy_idle(1000, 1000).unwrap();
        // λL is tiny here, so MTTF ≈ 1/(λ·0.5) = 0.2 years.
        let m = renewal_mttf(&trace, RawErrorRate::per_year(10.0), Frequency::base()).unwrap();
        assert!((m.as_years() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let dead = IntervalTrace::constant(10, 0.0).unwrap();
        assert!(renewal_mttf(&dead, RawErrorRate::per_year(1.0), Frequency::base()).is_err());
        let live = IntervalTrace::constant(10, 1.0).unwrap();
        assert!(renewal_mttf(&live, RawErrorRate::ZERO, Frequency::base()).is_err());
    }

    #[test]
    fn idle_tail_extends_mttf() {
        // Adding idle time after the busy window can only increase MTTF.
        let lambda = 0.05;
        let busy_only = renewal_mttf_cycles(&IntervalTrace::busy_idle(10, 0).unwrap(), lambda);
        let with_idle = renewal_mttf_cycles(&IntervalTrace::busy_idle(10, 90).unwrap(), lambda);
        assert!(with_idle > busy_only);
    }

    proptest! {
        #[test]
        fn renewal_bounded_by_exponential_envelopes(
            busy in 1u64..200,
            idle in 0u64..200,
            lambda in 1e-4f64..1.0,
        ) {
            // 1/λ ≤ MTTF ≤ 1/(λ·AVF): failing no faster than a fully
            // vulnerable component and no slower than the AVF average.
            let trace = IntervalTrace::busy_idle(busy, idle).unwrap();
            let m = renewal_mttf_cycles(&trace, lambda);
            let avf = trace.avf();
            prop_assert!(m >= 1.0 / lambda - 1e-9);
            prop_assert!(m <= 1.0 / (lambda * avf) + 1e-9 / (lambda * avf));
        }

        #[test]
        fn renewal_matches_direct_survival_sum(
            levels in proptest::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 1..40),
            lambda in 0.01f64..0.5,
        ) {
            prop_assume!(levels.iter().any(|&v| v > 0.0));
            let trace = IntervalTrace::from_levels(&levels).unwrap();
            // Direct: MTTF = Σ_t P(X > t) over integer cycles... the
            // continuous-time formula integrates within cycles, so compare
            // against a fine Riemann sum instead.
            let l = levels.len() as u64;
            let u_l = trace.cumulative_within_period(l);
            let steps = 2000usize;
            let mut riemann = 0.0;
            for i in 0..steps {
                let s = (i as f64 + 0.5) / steps as f64 * l as f64;
                let c = s as u64;
                let u = trace.cumulative_within_period(c)
                    + (s - c as f64) * trace.vulnerability_at(c);
                riemann += (-lambda * u).exp();
            }
            riemann *= l as f64 / steps as f64;
            let direct = riemann / (1.0 - (-lambda * u_l).exp());
            let renewal = renewal_mttf_cycles(&trace, lambda);
            prop_assert!(
                ((renewal - direct) / direct).abs() < 1e-2,
                "renewal={} direct={}", renewal, direct
            );
        }

        #[test]
        fn renewal_is_finite_across_fourteen_decades_of_lambda_l(
            levels in proptest::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 1..40),
            lambda_l_exp in -12.0f64..6.0,
        ) {
            // λL from 1e-12 (deep AVF-valid regime, survival ≈ 1 everywhere)
            // to 1e6 (e^{-λU} underflows to 0 after the first vulnerable
            // cycle): the integral must stay finite and positive at both
            // extremes, never NaN/∞ from underflow or division by a
            // vanishing failure probability.
            prop_assume!(levels.iter().any(|&v| v > 0.0));
            let trace = IntervalTrace::from_levels(&levels).unwrap();
            let lambda = 10f64.powf(lambda_l_exp) / levels.len() as f64;
            let m = renewal_mttf_cycles(&trace, lambda);
            prop_assert!(
                m.is_finite() && m > 0.0,
                "λL=1e{lambda_l_exp:.2}: renewal MTTF = {m}"
            );
            // And it can never beat a fully vulnerable component.
            prop_assert!(m >= 1.0 / lambda - 1e-9 / lambda);
        }
    }
}
