//! Section 3.2.2: the SOFR step applied to a system of N components whose
//! time to failure follows the near-exponential density
//! `f(x) = 2/√π · e^{−x²}`.
//!
//! Each component's MTTF is `E(X) = 1/√π`. The system fails at the first
//! component failure, `Y = min(X₁, …, X_N)`, whose true MTTF must be
//! computed numerically. SOFR instead sums reciprocal component MTTFs:
//! `MTTF_sofr = 1/(N√π)` — the discrepancy between the two is Figure 4.

use serr_numeric::quad::integrate_to_infinity;
use serr_numeric::special::{erfc, SQRT_PI};
use serr_types::SerrError;

/// The density `f(x) = 2/√π · e^{−x²}` for `x ≥ 0` (0 elsewhere).
#[must_use]
pub fn density(x: f64) -> f64 {
    if x < 0.0 {
        0.0
    } else {
        2.0 / SQRT_PI * (-x * x).exp()
    }
}

/// The CDF `F(x) = erf(x)` for `x ≥ 0`.
#[must_use]
pub fn cdf(x: f64) -> f64 {
    if x < 0.0 {
        0.0
    } else {
        serr_numeric::special::erf(x)
    }
}

/// The component MTTF `E(X) = 1/√π` (paper: "it follows that the MTTF of the
/// component is 1/√π").
#[must_use]
pub fn component_mttf() -> f64 {
    1.0 / SQRT_PI
}

/// The true system MTTF `E(min(X₁,…,X_N))`, computed by numerical
/// integration of the survival function: `E(Y) = ∫₀^∞ erfc(y)^N dy`.
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] if `n` is zero, or a quadrature
/// convergence error.
pub fn system_mttf(n: u32) -> Result<f64, SerrError> {
    if n == 0 {
        return Err(SerrError::invalid_config("system must have at least one component"));
    }
    integrate_to_infinity(move |y| erfc(y).powi(n as i32), 1e-13)
}

/// The SOFR estimate `1/(N√π)` (paper's `MTTF_sofr`).
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn sofr_mttf(n: u32) -> f64 {
    assert!(n > 0, "system must have at least one component");
    1.0 / (f64::from(n) * SQRT_PI)
}

/// Relative error of SOFR against the true min-of-N MTTF — the series
/// plotted in Figure 4.
///
/// # Errors
///
/// Propagates quadrature errors from [`system_mttf`].
pub fn sofr_relative_error(n: u32) -> Result<f64, SerrError> {
    let truth = system_mttf(n)?;
    Ok((sofr_mttf(n) - truth).abs() / truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_numeric::quad::integrate_to_infinity;

    #[test]
    fn density_normalizes_and_means_match_paper() {
        let total = integrate_to_infinity(density, 1e-13).unwrap();
        assert!((total - 1.0).abs() < 1e-9);
        let mean = integrate_to_infinity(|x| x * density(x), 1e-13).unwrap();
        assert!((mean - component_mttf()).abs() < 1e-9);
    }

    #[test]
    fn single_component_has_no_sofr_error() {
        // N = 1: min(X) = X, and SOFR degenerates to the component MTTF.
        let truth = system_mttf(1).unwrap();
        assert!((truth - component_mttf()).abs() < 1e-9);
        assert!(sofr_relative_error(1).unwrap() < 1e-8);
    }

    #[test]
    fn survival_form_matches_density_form_for_min() {
        // E(Y) via ∫ y·f_Y(y) dy with f_Y = N(1-F)^{N-1} f, as in the paper.
        let n = 4;
        let by_density =
            integrate_to_infinity(|y| y * 4.0 * erfc(y).powi(n - 1) * density(y), 1e-13).unwrap();
        let by_survival = system_mttf(n as u32).unwrap();
        assert!((by_density - by_survival).abs() < 1e-8);
    }

    #[test]
    fn figure4_shape_two_to_thirtytwo() {
        // Paper: "the error grows from 15% for a system with two components
        // to about 32% for a system with 32 components."
        let e2 = sofr_relative_error(2).unwrap();
        let e32 = sofr_relative_error(32).unwrap();
        assert!((0.10..=0.20).contains(&e2), "N=2 error {e2}");
        assert!((0.27..=0.38).contains(&e32), "N=32 error {e32}");
    }

    #[test]
    fn error_monotonically_grows_with_n() {
        let mut prev = 0.0;
        for n in [2u32, 4, 8, 16, 32] {
            let e = sofr_relative_error(n).unwrap();
            assert!(e > prev, "N={n}: {e} <= {prev}");
            prev = e;
        }
    }

    #[test]
    fn sofr_underestimates_mttf_here() {
        // For this distribution the min system lives longer than SOFR
        // predicts (light tail near zero), so SOFR is pessimistic.
        for n in [2u32, 8, 32] {
            assert!(sofr_mttf(n) < system_mttf(n).unwrap());
        }
    }

    #[test]
    fn rejects_zero_components() {
        assert!(system_mttf(0).is_err());
    }
}
