//! Appendix A, Theorem 1: the distribution of `T mod L` for exponential `T`.
//!
//! The AVF step implicitly assumes every cycle of the program loop is equally
//! likely to receive the next raw error. Theorem 1 shows this holds exactly
//! in the limit `L·λ → 0`; this module provides the *exact* distribution for
//! any `L·λ`, so the deviation from uniformity can be quantified.

use serr_numeric::special::one_minus_exp_neg;

/// Exact density of `X = T mod L` where `T ~ Exp(λ)`:
/// `f(x) = λ·e^{−λx} / (1 − e^{−λL})` for `x ∈ [0, L)`.
///
/// As `λL → 0` this converges to the uniform density `1/L` (Theorem 1).
///
/// # Panics
///
/// Panics if `lambda` or `l` is not positive, or `x` is outside `[0, l)`.
///
/// ```
/// use serr_analytic::theorem1::phase_density;
/// // Nearly uniform for tiny λL.
/// let f = phase_density(1e-12, 0.0, 100.0);
/// assert!((f - 0.01).abs() / 0.01 < 1e-9);
/// ```
#[must_use]
pub fn phase_density(lambda: f64, x: f64, l: f64) -> f64 {
    assert!(lambda > 0.0 && l > 0.0, "lambda and L must be positive");
    assert!((0.0..l).contains(&x), "x={x} outside [0, {l})");
    lambda * (-lambda * x).exp() / one_minus_exp_neg(lambda * l)
}

/// Exact CDF of `X = T mod L`: `F(x) = (1 − e^{−λx}) / (1 − e^{−λL})`.
///
/// # Panics
///
/// Panics if `lambda` or `l` is not positive, or `x` is outside `[0, l]`.
#[must_use]
pub fn phase_cdf(lambda: f64, x: f64, l: f64) -> f64 {
    assert!(lambda > 0.0 && l > 0.0, "lambda and L must be positive");
    assert!((0.0..=l).contains(&x), "x={x} outside [0, {l}]");
    one_minus_exp_neg(lambda * x) / one_minus_exp_neg(lambda * l)
}

/// Samples `X = T mod L` exactly by inverse transform of [`phase_cdf`],
/// given a uniform variate `u ∈ [0, 1)`.
///
/// This identity is what makes the Monte Carlo engine immune to the
/// precision loss of reducing astronomically large arrival times modulo a
/// period: the phase is drawn directly from its exact distribution at
/// magnitudes `≤ L`.
///
/// # Panics
///
/// Panics if `lambda` or `l` is not positive or `u` is outside `[0, 1)`.
#[must_use]
pub fn sample_phase(lambda: f64, l: f64, u: f64) -> f64 {
    assert!(lambda > 0.0 && l > 0.0, "lambda and L must be positive");
    assert!((0.0..1.0).contains(&u), "u={u} outside [0,1)");
    // x = -ln(1 - u(1 - e^{-λL})) / λ, computed stably.
    let scaled = u * one_minus_exp_neg(lambda * l);
    (-(-scaled).ln_1p() / lambda).min(l * (1.0 - f64::EPSILON))
}

/// The worst-case relative deviation of the phase density from uniform:
/// `sup_x |f(x)·L − 1|`, attained at `x = 0`.
///
/// A convenient summary of "how badly the AVF uniformity assumption is
/// violated" for a given `λL`; it is `≈ λL/2` for small `λL`.
///
/// # Panics
///
/// Panics if `lambda_l` is not positive.
///
/// ```
/// use serr_analytic::theorem1::uniformity_deviation;
/// assert!(uniformity_deviation(1e-6) < 1e-5);
/// assert!(uniformity_deviation(2.0) > 0.5);
/// ```
#[must_use]
pub fn uniformity_deviation(lambda_l: f64) -> f64 {
    assert!(lambda_l > 0.0, "lambda*L must be positive");
    // f(0)·L = λL / (1 - e^{-λL}) ≥ 1; deviation is that minus 1.
    lambda_l / one_minus_exp_neg(lambda_l) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_numeric::quad::integrate;

    #[test]
    fn density_integrates_to_one() {
        for &(lambda, l) in &[(0.5, 4.0), (2.0, 1.0), (1e-6, 1000.0)] {
            let total =
                integrate(|x| phase_density(lambda, x, l), 0.0, l * (1.0 - 1e-12), 1e-12).unwrap();
            assert!((total - 1.0).abs() < 1e-8, "λ={lambda}, L={l}: {total}");
        }
    }

    #[test]
    fn cdf_is_density_integral() {
        let (lambda, l) = (0.7, 3.0);
        for i in 1..10 {
            let x = l * f64::from(i) / 10.0;
            let by_quad = integrate(|t| phase_density(lambda, t, l), 0.0, x, 1e-12).unwrap();
            assert!((phase_cdf(lambda, x, l) - by_quad).abs() < 1e-10);
        }
        assert_eq!(phase_cdf(lambda, 0.0, l), 0.0);
        assert!((phase_cdf(lambda, l, l) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn converges_to_uniform_as_lambda_l_vanishes() {
        // Theorem 1: for L·λ → 0, f(x) → 1/L everywhere.
        let l = 100.0;
        for &lambda in &[1e-10, 1e-12, 1e-14] {
            for i in 0..10 {
                let x = l * f64::from(i) / 10.0;
                let f = phase_density(lambda, x, l);
                assert!((f * l - 1.0).abs() < 1e-8, "λ={lambda}, x={x}: f·L = {}", f * l);
            }
        }
    }

    #[test]
    fn deviates_from_uniform_for_large_lambda_l() {
        // The counter-regime: λL = 3 means early cycles are ~3x likelier.
        let (lambda, l) = (3.0, 1.0);
        let early = phase_density(lambda, 0.0, l);
        let late = phase_density(lambda, 0.999, l);
        assert!(early / late > 15.0);
    }

    #[test]
    fn sample_phase_inverts_cdf() {
        let (lambda, l) = (0.9, 5.0);
        for &u in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            let x = sample_phase(lambda, l, u);
            assert!((0.0..l).contains(&x));
            assert!((phase_cdf(lambda, x, l) - u).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn sample_phase_stable_for_tiny_lambda_l() {
        // λL = 1e-15: phases must still spread across [0, L), not collapse.
        let (lambda, l) = (1e-18, 1e3);
        let lo = sample_phase(lambda, l, 0.1);
        let mid = sample_phase(lambda, l, 0.5);
        let hi = sample_phase(lambda, l, 0.9);
        assert!((lo / l - 0.1).abs() < 1e-6);
        assert!((mid / l - 0.5).abs() < 1e-6);
        assert!((hi / l - 0.9).abs() < 1e-6);
    }

    #[test]
    fn uniformity_deviation_small_lambda_l_linear() {
        // deviation ≈ λL/2 for small λL.
        for &ll in &[1e-3, 1e-5, 1e-7] {
            let d = uniformity_deviation(ll);
            assert!((d / (ll / 2.0) - 1.0).abs() < 0.01, "λL={ll}: {d}");
        }
    }

    #[test]
    fn uniformity_deviation_monotone() {
        let mut prev = 0.0;
        for i in 1..40 {
            let d = uniformity_deviation(f64::from(i) * 0.25);
            assert!(d > prev);
            prev = d;
        }
    }
}
