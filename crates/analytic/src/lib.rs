//! Closed-form and numerical analysis of the AVF and SOFR assumptions
//! (paper Section 3 and Appendix A).
//!
//! Four analytic tools back the experimental results:
//!
//! * [`theorem1`] — the exact distribution of `T mod L` for an exponential
//!   `T`, which becomes uniform as `L·λ → 0` (Appendix A, Theorem 1). This is
//!   the assumption underlying the AVF step.
//! * [`periodic`] — the closed-form MTTF of a component running the paper's
//!   busy/idle counter-example program (Section 3.1.2, Derivation 1), both in
//!   the paper's verbatim form and in an algebraically simplified form, plus
//!   the AVF-step estimate and its relative error (Figure 3).
//! * [`renewal`] — an exact first-principles MTTF for **any** periodic
//!   vulnerability trace: the time to failure is the first event of an
//!   inhomogeneous Poisson process with intensity `λ·v(t)`, so
//!   `MTTF = ∫₀ᴸ e^{−λU(s)} ds / (1 − e^{−λU(L)})` with `U(s) = ∫₀ˢ v`.
//!   Every estimator in the workspace (Monte Carlo, SoftArch, AVF+SOFR) is
//!   validated against this.
//! * [`min_of_n`] — Section 3.2.2's min-of-N system with the
//!   near-exponential density `f(x) = 2/√π·e^{−x²}`: numerical system MTTF
//!   vs. the SOFR estimate (Figure 4).
//! * [`composition`] — Section 3.2.1's Erlang/geometric composition showing
//!   the time to failure is exactly exponential with rate `λ·AVF` in the
//!   `L·λ → 0` limit.
//!
//! # Example: the AVF step is exact in the small-`λL` limit
//!
//! ```
//! use serr_analytic::periodic::{avf_step_mttf, busy_idle_mttf};
//!
//! let (lambda, a, l) = (1e-9, 50.0, 100.0);
//! let truth = busy_idle_mttf(lambda, a, l);
//! let avf = avf_step_mttf(lambda, a / l);
//! assert!(((avf - truth) / truth).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod composition;
pub mod fig;
pub mod min_of_n;
pub mod periodic;
pub mod renewal;
pub mod theorem1;
