//! Section 3.1.2 / Derivation 1: the exact MTTF of the busy/idle
//! counter-example program, and the AVF step's error on it.
//!
//! The program loops forever with iteration length `L`; the component is
//! active (every raw error fails) for the first `A` cycles and idle (every
//! raw error masked) for the rest. All quantities here are unit-agnostic:
//! use consistent units for `lambda` (events per unit time) and `a`, `l`
//! (unit time).

use serr_numeric::special::one_minus_exp_neg;

/// The exact first-principles MTTF `E(X)` of the busy/idle program, in the
/// algebraically simplified form
/// `E(X) = 1/λ + (L − A)·e^{−λA} / (1 − e^{−λA})`.
///
/// This is equal to the paper's Derivation 1 expression (see
/// [`busy_idle_mttf_paper_form`] and the property test demonstrating
/// equality) but is numerically stable for extreme `λA`.
///
/// # Panics
///
/// Panics unless `lambda > 0` and `0 < a ≤ l`.
///
/// ```
/// use serr_analytic::periodic::busy_idle_mttf;
/// // Always busy: plain exponential MTTF.
/// assert!((busy_idle_mttf(2.0, 5.0, 5.0) - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn busy_idle_mttf(lambda: f64, a: f64, l: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(a > 0.0 && a <= l, "need 0 < A <= L, got A={a}, L={l}");
    1.0 / lambda + (l - a) * (-lambda * a).exp() / one_minus_exp_neg(lambda * a)
}

/// The paper's Derivation 1 closed form, transcribed verbatim:
///
/// `E(X) = (1−e^{−λL})/(1−e^{−λA}) · ( L·e^{−λL}/(1−e^{−λL})²
///         − L·e^{−λA}e^{−λL}/(1−e^{−λL})² − A·e^{−λA}/(1−e^{−λL})
///         + (1/λ)(1−e^{−λA})/(1−e^{−λL}) + L(e^{−λA}−e^{−λL})/(1−e^{−λL})² )`
///
/// Kept in this exact shape so the reproduction can check the paper's
/// algebra; prefer [`busy_idle_mttf`] in production code.
///
/// # Panics
///
/// Panics unless `lambda > 0` and `0 < a ≤ l`.
#[must_use]
pub fn busy_idle_mttf_paper_form(lambda: f64, a: f64, l: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(a > 0.0 && a <= l, "need 0 < A <= L, got A={a}, L={l}");
    let ea = (-lambda * a).exp();
    let el = (-lambda * l).exp();
    let d = 1.0 - el;
    let d2 = d * d;
    (d / (1.0 - ea))
        * (l * el / d2 - l * ea * el / d2 - a * ea / d
            + (1.0 / lambda) * (1.0 - ea) / d
            + l * (ea - el) / d2)
}

/// The AVF-step MTTF estimate `E_AVF(X) = 1/(λ·AVF)` (paper Equation 1).
///
/// # Panics
///
/// Panics unless `lambda > 0` and `avf ∈ (0, 1]`.
#[must_use]
pub fn avf_step_mttf(lambda: f64, avf: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(avf > 0.0 && avf <= 1.0, "AVF must lie in (0,1], got {avf}");
    1.0 / (lambda * avf)
}

/// The relative error of the AVF step on the busy/idle program:
/// `|E_AVF(X) − E(X)| / E(X)` — the quantity plotted in Figure 3.
///
/// # Panics
///
/// Panics unless `lambda > 0` and `0 < a ≤ l`.
#[must_use]
pub fn avf_step_relative_error(lambda: f64, a: f64, l: f64) -> f64 {
    let truth = busy_idle_mttf(lambda, a, l);
    let estimate = avf_step_mttf(lambda, a / l);
    (estimate - truth).abs() / truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simplified_equals_paper_form() {
        for &(lambda, a, l) in
            &[(0.5, 1.0, 2.0), (2.0, 0.3, 1.0), (0.01, 5.0, 20.0), (1.0, 0.9, 1.0), (3.0, 2.0, 2.0)]
        {
            let simple = busy_idle_mttf(lambda, a, l);
            let paper = busy_idle_mttf_paper_form(lambda, a, l);
            assert!(
                ((simple - paper) / simple).abs() < 1e-10,
                "λ={lambda}, A={a}, L={l}: {simple} vs {paper}"
            );
        }
    }

    proptest! {
        #[test]
        fn simplified_equals_paper_form_prop(
            lambda in 1e-3f64..10.0,
            a_frac in 0.05f64..1.0,
            l in 0.1f64..100.0,
        ) {
            let a = a_frac * l;
            let simple = busy_idle_mttf(lambda, a, l);
            let paper = busy_idle_mttf_paper_form(lambda, a, l);
            prop_assert!(((simple - paper) / simple).abs() < 1e-8);
        }

        #[test]
        fn avf_step_exact_in_small_lambda_l_limit(
            a_frac in 0.1f64..1.0,
            l in 0.1f64..100.0,
        ) {
            let a = a_frac * l;
            let lambda = 1e-9 / l; // λL = 1e-9
            prop_assert!(avf_step_relative_error(lambda, a, l) < 1e-6);
        }

        #[test]
        fn mttf_decreases_with_lambda(
            a_frac in 0.1f64..1.0,
            l in 0.1f64..10.0,
        ) {
            let a = a_frac * l;
            let m1 = busy_idle_mttf(0.1, a, l);
            let m2 = busy_idle_mttf(1.0, a, l);
            let m3 = busy_idle_mttf(10.0, a, l);
            prop_assert!(m1 > m2 && m2 > m3);
        }
    }

    #[test]
    fn always_busy_is_pure_exponential() {
        for &lambda in &[0.1, 1.0, 7.5] {
            assert!((busy_idle_mttf(lambda, 3.0, 3.0) - 1.0 / lambda).abs() < 1e-12);
        }
    }

    #[test]
    fn avf_overestimates_for_busy_first_program() {
        // With the busy span first, errors early in the loop always hit the
        // active window, so the true MTTF is *smaller* than the AVF estimate
        // when λL is large.
        let (lambda, a, l) = (2.0, 1.0, 2.0);
        let truth = busy_idle_mttf(lambda, a, l);
        let est = avf_step_mttf(lambda, a / l);
        assert!(est > truth);
    }

    #[test]
    fn error_grows_with_lambda_l() {
        let (a, l) = (0.5, 1.0);
        let e_small = avf_step_relative_error(1e-6, a, l);
        let e_mid = avf_step_relative_error(0.1, a, l);
        let e_large = avf_step_relative_error(2.0, a, l);
        assert!(e_small < e_mid && e_mid < e_large);
        assert!(e_small < 1e-6);
        assert!(e_large > 0.1);
    }

    #[test]
    fn extreme_lambda_a_is_stable() {
        // λA huge: e^{-λA} underflows; MTTF -> 1/λ.
        let m = busy_idle_mttf(10.0, 200.0, 400.0);
        assert!((m - 0.1).abs() < 1e-12);
        // λA tiny: MTTF -> L/(Aλ) (the AVF answer).
        let m = busy_idle_mttf(1e-12, 1.0, 4.0);
        assert!((m * 1e-12 - 4.0).abs() < 1e-6);
    }
}
