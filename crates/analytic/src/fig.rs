//! Row generators for the paper's analytic figures (3 and 4).
//!
//! These produce exactly the series plotted in the paper; the `serr-bench`
//! crate prints them as tables and benchmarks their computation.

use serde::{Deserialize, Serialize};
use serr_types::{SerrError, BASELINE_RAW_RATE_PER_BIT_PER_YEAR};

use crate::{min_of_n, periodic};

/// Number of bits in the 100 MB cache of Figure 3.
pub const FIG3_CACHE_BITS: f64 = 8.0 * 100.0 * 1024.0 * 1024.0;

/// The raw-rate scaling factors of Figure 3 ("λ of 3 and 5 times this
/// value to represent changes in technology and altitude").
pub const FIG3_SCALES: [f64; 3] = [1.0, 3.0, 5.0];

/// One point of Figure 3: the AVF-step error for a 100 MB cache running a
/// loop of `l_days` days, busy for the first half.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Loop iteration size in days.
    pub l_days: f64,
    /// Scaling factor applied to the baseline raw error rate.
    pub scale: f64,
    /// The cache's raw error rate, errors/year.
    pub lambda_per_year: f64,
    /// First-principles MTTF (Derivation 1), years.
    pub mttf_true_years: f64,
    /// AVF-step MTTF, years.
    pub mttf_avf_years: f64,
    /// `|E_AVF − E(X)| / E(X)`.
    pub relative_error: f64,
}

/// Generates Figure 3: L from `1..=max_days` days (A = L/2) for each scale
/// in [`FIG3_SCALES`], for a cache of [`FIG3_CACHE_BITS`] bits.
///
/// ```
/// use serr_analytic::fig::fig3_series;
/// let rows = fig3_series(16);
/// assert_eq!(rows.len(), 3 * 16);
/// // Errors grow with both L and the rate scale.
/// assert!(rows.last().unwrap().relative_error > rows[0].relative_error);
/// ```
#[must_use]
pub fn fig3_series(max_days: u32) -> Vec<Fig3Point> {
    let mut rows = Vec::new();
    for &scale in &FIG3_SCALES {
        let lambda_per_year = FIG3_CACHE_BITS * BASELINE_RAW_RATE_PER_BIT_PER_YEAR * scale;
        for day in 1..=max_days {
            rows.push(fig3_point(f64::from(day), scale, lambda_per_year));
        }
    }
    rows
}

fn fig3_point(l_days: f64, scale: f64, lambda_per_year: f64) -> Fig3Point {
    let l_years = l_days / 365.0;
    let a_years = l_years / 2.0;
    let mttf_true_years = periodic::busy_idle_mttf(lambda_per_year, a_years, l_years);
    let mttf_avf_years = periodic::avf_step_mttf(lambda_per_year, 0.5);
    Fig3Point {
        l_days,
        scale,
        lambda_per_year,
        mttf_true_years,
        mttf_avf_years,
        relative_error: (mttf_avf_years - mttf_true_years).abs() / mttf_true_years,
    }
}

/// One point of Figure 4: the SOFR-step error for a system of `n`
/// components with the Section 3.2.2 near-exponential time to failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Number of components.
    pub n: u32,
    /// True system MTTF `E(min)` (numerical integration).
    pub mttf_true: f64,
    /// SOFR estimate `1/(N√π)`.
    pub mttf_sofr: f64,
    /// `|MTTF_sofr − E(Y)| / E(Y)`.
    pub relative_error: f64,
}

/// Generates Figure 4 for `n` from 2 to `max_n` ("N from 2 to 32").
///
/// # Errors
///
/// Propagates quadrature failures from the min-of-N integration.
pub fn fig4_series(max_n: u32) -> Result<Vec<Fig4Point>, SerrError> {
    (2..=max_n)
        .map(|n| {
            let mttf_true = min_of_n::system_mttf(n)?;
            let mttf_sofr = min_of_n::sofr_mttf(n);
            Ok(Fig4Point {
                n,
                mttf_true,
                mttf_sofr,
                relative_error: (mttf_sofr - mttf_true).abs() / mttf_true,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_baseline_rate_matches_paper() {
        // "10 errors/year for the full cache" (paper's rounding of 8.39).
        let rows = fig3_series(1);
        let base = rows.iter().find(|r| r.scale == 1.0).unwrap();
        assert!((base.lambda_per_year - 8.388_608).abs() < 1e-6);
    }

    #[test]
    fn fig3_errors_small_at_baseline_larger_at_5x() {
        let rows = fig3_series(16);
        let base_16d = rows.iter().find(|r| r.scale == 1.0 && r.l_days == 16.0).unwrap();
        let hot_16d = rows.iter().find(|r| r.scale == 5.0 && r.l_days == 16.0).unwrap();
        // Paper: "although the errors are small for the baseline value of
        // lambda, they can be significant for higher values."
        assert!(base_16d.relative_error < 0.10, "baseline {}", base_16d.relative_error);
        assert!(hot_16d.relative_error > 0.15, "5x {}", hot_16d.relative_error);
        assert!(hot_16d.relative_error > base_16d.relative_error);
    }

    #[test]
    fn fig3_error_monotone_in_l_for_fixed_scale() {
        let rows = fig3_series(16);
        let mut prev = -1.0;
        for r in rows.iter().filter(|r| r.scale == 3.0) {
            assert!(r.relative_error > prev, "L={} err={}", r.l_days, r.relative_error);
            prev = r.relative_error;
        }
    }

    #[test]
    fn fig4_endpoints_match_paper() {
        let rows = fig4_series(32).unwrap();
        assert_eq!(rows.len(), 31);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert_eq!(first.n, 2);
        assert_eq!(last.n, 32);
        // "error grows from 15% ... to about 32%"
        assert!((0.10..=0.20).contains(&first.relative_error), "{}", first.relative_error);
        assert!((0.27..=0.38).contains(&last.relative_error), "{}", last.relative_error);
    }
}
