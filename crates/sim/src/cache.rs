//! Set-associative caches and TLBs with LRU replacement.

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room (write-back traffic
    /// for the next level).
    pub writeback: bool,
}

/// A set-associative write-back/write-allocate cache with true-LRU
/// replacement and per-line dirty bits.
///
/// Tags are stored per set in recency order (most recent last), which makes
/// LRU update a rotate and keeps the structure allocation-free per access.
///
/// ```
/// use serr_sim::cache::Cache;
/// let mut c = Cache::new(256, 2, 64); // 256 B, 2-way, 64 B lines: 2 sets
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(0));    // hit
/// assert!(!c.access(128)); // other way of set 0
/// assert!(!c.access(256)); // evicts line 0 (LRU)
/// assert!(!c.access(0));   // miss again
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets[s]` holds up to `ways` `(line, dirty)` pairs, LRU first.
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates a cache of `bytes` capacity, `ways` associativity, and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (validated by `SimConfig`).
    #[must_use]
    pub fn new(bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways > 0 && line_bytes.is_power_of_two());
        let lines = bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity must be a whole number of sets");
        let n_sets = lines / ways;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two, got {n_sets}");
        Cache {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: n_sets as u64 - 1,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Reads `addr`; returns `true` on hit. Misses allocate the line.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_rw(addr, false).hit
    }

    /// Accesses `addr`, marking the line dirty when `write`; reports hit
    /// status and any dirty eviction.
    pub fn access_rw(&mut self, addr: u64, write: bool) -> Access {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            let (tag, dirty) = set.remove(pos);
            set.push((tag, dirty || write));
            self.hits += 1;
            Access { hit: true, writeback: false }
        } else {
            let mut writeback = false;
            if set.len() == self.ways {
                let (_, dirty) = set.remove(0);
                writeback = dirty;
            }
            set.push((line, write));
            self.misses += 1;
            if writeback {
                self.writebacks += 1;
            }
            Access { hit: false, writeback }
        }
    }

    /// Installs `addr`'s line without counting a demand access (prefetch
    /// fill). Returns whether a dirty victim was written back.
    pub fn install(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            let pair = set.remove(pos);
            set.push(pair);
            return false;
        }
        let mut writeback = false;
        if set.len() == self.ways {
            let (_, dirty) = set.remove(0);
            writeback = dirty;
        }
        set.push((line, false));
        if writeback {
            self.writebacks += 1;
        }
        writeback
    }

    /// Checks residency of `addr` without touching LRU state or allocating
    /// (used by the MSHR gate: a miss must not be started if no miss
    /// register is free).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        self.sets[(line & self.set_mask) as usize].iter().any(|&(t, _)| t == line)
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate over all accesses (0 if never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully-associative TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Page numbers, LRU first.
    entries: Vec<u64>,
    capacity: usize,
    page_shift: u32,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB of `entries` translations over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or the page size is not a power of two.
    #[must_use]
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0 && page_bytes.is_power_of_two());
        Tlb {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            page_shift: page_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns `true` on TLB hit. Misses install the page.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let p = self.entries.remove(pos);
            self.entries.push(p);
            self.hits += 1;
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.remove(0);
            }
            self.entries.push(page);
            self.misses += 1;
            false
        }
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 if never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_within_set() {
        // 4-way, 1 set.
        let mut c = Cache::new(4 * 64, 4, 64);
        for a in [0u64, 64, 128, 192] {
            assert!(!c.access(a));
        }
        // Touch 0 to make it MRU, then insert a 5th line: 64 must be evicted.
        assert!(c.access(0));
        assert!(!c.access(256));
        assert!(c.access(0));
        assert!(!c.access(64));
        assert_eq!(c.misses(), 6);
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets, 1 way, 64B lines: addresses 0 and 128 conflict.
        let mut c = Cache::new(128, 1, 64);
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(0));
        assert!((c.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_that_fits_has_no_capacity_misses() {
        let mut c = Cache::new(32 * 1024, 2, 128);
        // 16 KB working set, swept 10 times.
        for sweep in 0..10 {
            for line in 0..128u64 {
                let hit = c.access(line * 128);
                if sweep > 0 {
                    assert!(hit, "sweep {sweep}, line {line}");
                }
            }
        }
        assert_eq!(c.misses(), 128);
    }

    #[test]
    fn dirty_lines_write_back_on_eviction() {
        // 1 set, 2 ways.
        let mut c = Cache::new(128, 2, 64);
        assert!(!c.access_rw(0, true).hit); // dirty line 0
        assert!(!c.access_rw(64, false).hit); // clean line 1
                                              // Line 2 evicts LRU (dirty line 0): writeback.
        let a = c.access_rw(128, false);
        assert!(!a.hit && a.writeback);
        assert_eq!(c.writebacks(), 1);
        // Line 3 evicts clean line 1: no writeback.
        let a = c.access_rw(192, false);
        assert!(!a.hit && !a.writeback);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn writes_to_resident_lines_dirty_them() {
        let mut c = Cache::new(128, 2, 64);
        assert!(!c.access_rw(0, false).hit); // clean fill
        assert!(c.access_rw(0, true).hit); // dirtied by write hit
        c.access_rw(64, false);
        assert!(c.access_rw(128, false).writeback); // line 0 was dirty
    }

    #[test]
    fn install_fills_without_counting_stats() {
        let mut c = Cache::new(128, 2, 64);
        assert!(!c.install(0));
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.access(0), "installed line must hit");
        // Install over a dirty victim reports the writeback.
        c.access_rw(64, true);
        assert!(c.install(128) || c.install(192));
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut c = Cache::new(128, 1, 64);
        assert!(!c.probe(0));
        c.access(0);
        assert!(c.probe(0));
        let (h, m) = (c.hits(), c.misses());
        let _ = c.probe(0);
        let _ = c.probe(999_999);
        assert_eq!((c.hits(), c.misses()), (h, m));
        // Probe does not refresh LRU: after probing 0, inserting a
        // conflicting line still evicts it.
        c.access(64 * 2); // conflicts in 1-way set 0
        assert!(!c.probe(0));
    }

    #[test]
    fn tlb_behaves_like_fully_assoc_lru() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0));
        assert!(!t.access(4096));
        assert!(t.access(0));
        // Installing a third page evicts LRU (page 1).
        assert!(!t.access(8192));
        assert!(!t.access(4096));
        assert_eq!(t.misses(), 4);
        assert!(t.miss_rate() > 0.5);
    }

    #[test]
    fn accesses_within_a_page_share_translation() {
        let mut t = Tlb::new(8, 4096);
        assert!(!t.access(100));
        assert!(t.access(4000));
        assert!(!t.access(5000));
    }
}
