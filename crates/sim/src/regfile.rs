//! Register renaming and physical-register liveness tracking.
//!
//! The register file's masking model (paper Section 4.1): raw errors strike
//! each of the 256 entries with equal probability, and an error in an entry
//! is masked iff the value there "will never be read in the future". A
//! physical register is therefore *vulnerable* from the cycle its value is
//! produced (writeback) through the cycle of its last read.

use serr_workload::RegId;

/// Identifies a physical register: bank-local index plus bank flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// Index within the bank.
    pub idx: u16,
    /// Whether this is an FP-bank register.
    pub fp: bool,
}

#[derive(Debug, Clone)]
struct PhysState {
    /// Cycle the current value was produced (writeback), if produced.
    written: Option<u64>,
    /// Cycle of the latest read of the current value.
    last_read: Option<u64>,
}

/// Rename tables plus free lists for both banks, with liveness recording.
#[derive(Debug)]
pub struct RenameState {
    int_map: [PhysReg; RegId::BANK_SIZE as usize],
    fp_map: [PhysReg; RegId::BANK_SIZE as usize],
    int_free: Vec<u16>,
    fp_free: Vec<u16>,
    int_state: Vec<PhysState>,
    fp_state: Vec<PhysState>,
    /// Completed liveness intervals `[start, end]` in cycles.
    intervals: Vec<(u64, u64)>,
}

impl RenameState {
    /// Creates rename state with `int_phys`/`fp_phys` physical registers per
    /// bank. The 32 architectural registers of each bank start mapped to
    /// physical 0..32, holding program-input values written at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if a bank has no headroom beyond the architectural registers
    /// (checked by `SimConfig::validate`).
    #[must_use]
    pub fn new(int_phys: usize, fp_phys: usize) -> Self {
        let arch = RegId::BANK_SIZE as usize;
        assert!(int_phys > arch && fp_phys > arch);
        let ident = |i: usize, fp: bool| PhysReg { idx: i as u16, fp };
        let mut int_map = [ident(0, false); RegId::BANK_SIZE as usize];
        let mut fp_map = [ident(0, true); RegId::BANK_SIZE as usize];
        for i in 0..arch {
            int_map[i] = ident(i, false);
            fp_map[i] = ident(i, true);
        }
        let initial = PhysState { written: Some(0), last_read: None };
        let free_state = PhysState { written: None, last_read: None };
        let mut int_state = vec![initial.clone(); arch];
        int_state.extend(std::iter::repeat_n(free_state.clone(), int_phys - arch));
        let mut fp_state = vec![initial; arch];
        fp_state.extend(std::iter::repeat_n(free_state, fp_phys - arch));
        RenameState {
            int_map,
            fp_map,
            int_free: (arch as u16..int_phys as u16).rev().collect(),
            fp_free: (arch as u16..fp_phys as u16).rev().collect(),
            int_state,
            fp_state,
            intervals: Vec::new(),
        }
    }

    /// Current physical mapping of an architectural register.
    #[must_use]
    pub fn lookup(&self, arch: RegId) -> PhysReg {
        match arch {
            RegId::Int(i) => self.int_map[i as usize],
            RegId::Fp(i) => self.fp_map[i as usize],
        }
    }

    /// Whether a free physical register exists in the bank `arch` needs.
    #[must_use]
    pub fn can_rename(&self, arch: RegId) -> bool {
        match arch {
            RegId::Int(_) => !self.int_free.is_empty(),
            RegId::Fp(_) => !self.fp_free.is_empty(),
        }
    }

    /// Renames `arch` to a fresh physical register, returning
    /// `(new_phys, previous_phys)`; the previous mapping must be released
    /// with [`RenameState::release`] when the renaming instruction retires.
    ///
    /// # Panics
    ///
    /// Panics if no free register exists (guard with
    /// [`RenameState::can_rename`]).
    pub fn rename(&mut self, arch: RegId) -> (PhysReg, PhysReg) {
        let (map, free, fp) = match arch {
            RegId::Int(i) => (&mut self.int_map[i as usize], &mut self.int_free, false),
            RegId::Fp(i) => (&mut self.fp_map[i as usize], &mut self.fp_free, true),
        };
        let idx = free.pop().expect("no free physical register");
        let prev = *map;
        let new = PhysReg { idx, fp };
        *map = new;
        new.pipe_state(self).clone_from(&PhysState { written: None, last_read: None });
        (new, prev)
    }

    /// Records that `phys` produced its value at `cycle` (writeback).
    pub fn record_write(&mut self, phys: PhysReg, cycle: u64) {
        let st = phys.pipe_state(self);
        st.written = Some(cycle);
        st.last_read = None;
    }

    /// Records a read of `phys` at `cycle`.
    pub fn record_read(&mut self, phys: PhysReg, cycle: u64) {
        let st = phys.pipe_state(self);
        debug_assert!(st.written.is_some(), "read of unwritten physical register");
        match &mut st.last_read {
            Some(lr) => *lr = (*lr).max(cycle),
            none => *none = Some(cycle),
        }
    }

    /// Releases a previously current mapping (at retirement of the
    /// instruction that superseded it), closing its liveness interval.
    pub fn release(&mut self, phys: PhysReg) {
        self.close_interval(phys);
        match phys.fp {
            false => self.int_free.push(phys.idx),
            true => self.fp_free.push(phys.idx),
        }
    }

    fn close_interval(&mut self, phys: PhysReg) {
        let st = phys.pipe_state(self);
        let (written, last_read) = (st.written.take(), st.last_read.take());
        if let (Some(w), Some(r)) = (written, last_read) {
            // Value produced and read: vulnerable over [w, r].
            self.intervals.push((w, r.max(w)));
        }
        // Written but never read: dead on arrival — no vulnerable interval
        // (this is exactly the paper's masking condition).
    }

    /// Flushes liveness for values still mapped at simulation end and
    /// returns all `(start_cycle, end_cycle)` vulnerable intervals.
    #[must_use]
    pub fn finish(mut self) -> Vec<(u64, u64)> {
        let mapped: Vec<PhysReg> = self.int_map.iter().chain(self.fp_map.iter()).copied().collect();
        for phys in mapped {
            self.close_interval(phys);
        }
        self.intervals
    }

    /// Number of completed vulnerable intervals so far.
    #[must_use]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }
}

impl PhysReg {
    fn pipe_state(self, rs: &mut RenameState) -> &mut PhysState {
        if self.fp {
            &mut rs.fp_state[self.idx as usize]
        } else {
            &mut rs.int_state[self.idx as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_allocates_and_release_recycles() {
        let mut rs = RenameState::new(34, 34);
        let (p1, prev1) = rs.rename(RegId::Int(3));
        assert_ne!(p1, prev1);
        assert_eq!(rs.lookup(RegId::Int(3)), p1);
        let (p2, _) = rs.rename(RegId::Int(4));
        // Both spares consumed.
        assert!(!rs.can_rename(RegId::Int(0)));
        assert!(rs.can_rename(RegId::Fp(0)));
        rs.release(prev1);
        assert!(rs.can_rename(RegId::Int(0)));
        let (p3, _) = rs.rename(RegId::Int(5));
        assert_eq!(p3.idx, prev1.idx);
        assert_ne!(p3, p2);
    }

    #[test]
    fn liveness_interval_spans_write_to_last_read() {
        let mut rs = RenameState::new(40, 40);
        let (p, _prev) = rs.rename(RegId::Int(0));
        rs.record_write(p, 100);
        rs.record_read(p, 120);
        rs.record_read(p, 110); // out-of-order reads keep the max
                                // Superseding write retires: the old value's liveness closes.
        let (_p2, prev2) = rs.rename(RegId::Int(0));
        assert_eq!(prev2, p);
        rs.release(prev2);
        assert_eq!(rs.interval_count(), 1);
        let ivs = rs.finish();
        assert!(ivs.contains(&(100, 120)));
    }

    #[test]
    fn never_read_values_are_dead() {
        let mut rs = RenameState::new(40, 40);
        let (p, _) = rs.rename(RegId::Fp(1));
        rs.record_write(p, 50);
        let (_, prev) = rs.rename(RegId::Fp(1));
        rs.release(prev);
        // Initial arch values (written at 0, never read) are dead too.
        let ivs = rs.finish();
        assert!(ivs.is_empty());
    }

    #[test]
    fn initial_architectural_values_count_when_read() {
        let mut rs = RenameState::new(40, 40);
        let p = rs.lookup(RegId::Int(7));
        rs.record_read(p, 30);
        let ivs = rs.finish();
        assert!(ivs.contains(&(0, 30)));
    }

    #[test]
    fn finish_closes_in_flight_values() {
        let mut rs = RenameState::new(40, 40);
        let (p, _) = rs.rename(RegId::Int(2));
        rs.record_write(p, 10);
        rs.record_read(p, 25);
        let ivs = rs.finish();
        assert!(ivs.contains(&(10, 25)));
    }
}
