//! Masking-trace collection during simulation.
//!
//! The paper studies four processor components (Section 4.1):
//!
//! * **integer unit**, **FP unit**, **decode unit** — a raw error in a cycle
//!   is masked iff the unit is not processing an instruction that cycle;
//!   with multiple functional-unit instances we record the busy *fraction*
//!   (a raw error strikes each instance with equal probability);
//! * **register file** — errors strike the 256 entries uniformly; an entry
//!   is vulnerable while it holds a value that will still be read.

use serr_trace::IntervalTrace;
use serr_types::SerrError;

/// The per-component masking traces produced by one simulation, each with
/// period equal to the simulated cycle count (the workload loops, paper
/// Section 3 assumption 2).
#[derive(Debug, Clone)]
pub struct ProcessorMaskingTraces {
    /// Integer-unit busy fraction per cycle.
    pub int_unit: IntervalTrace,
    /// FP-unit busy fraction per cycle.
    pub fp_unit: IntervalTrace,
    /// Decode (dispatch) slot occupancy per cycle.
    pub decode: IntervalTrace,
    /// Register-file live fraction per cycle (live entries / 256).
    pub regfile: IntervalTrace,
}

/// Accumulates per-cycle unit occupancy during simulation via difference
/// arrays, then materializes run-length traces.
#[derive(Debug)]
pub struct MaskingCollector {
    /// One diff array per functional-unit instance (occupancy counts).
    int_fu_diff: Vec<Vec<i32>>,
    fp_fu_diff: Vec<Vec<i32>>,
    /// Instructions dispatched per cycle.
    decode_count: Vec<u16>,
    /// Register liveness diff (+1 at start, −1 after end).
    rf_diff: Vec<i32>,
    dispatch_width: usize,
    regfile_entries: usize,
}

impl MaskingCollector {
    /// Creates a collector for a machine with the given unit counts.
    #[must_use]
    pub fn new(
        int_units: usize,
        fp_units: usize,
        dispatch_width: usize,
        regfile_entries: usize,
    ) -> Self {
        MaskingCollector {
            int_fu_diff: vec![Vec::new(); int_units],
            fp_fu_diff: vec![Vec::new(); fp_units],
            decode_count: Vec::new(),
            rf_diff: Vec::new(),
            dispatch_width,
            regfile_entries,
        }
    }

    fn bump(diff: &mut Vec<i32>, start: u64, end: u64) {
        let end = end.max(start + 1) as usize;
        if diff.len() < end + 1 {
            diff.resize(end + 1, 0);
        }
        diff[start as usize] += 1;
        diff[end] -= 1;
    }

    /// Marks integer FU `fu` busy over `[start, end)` cycles.
    pub fn mark_int(&mut self, fu: usize, start: u64, end: u64) {
        Self::bump(&mut self.int_fu_diff[fu], start, end);
    }

    /// Marks FP FU `fu` busy over `[start, end)` cycles.
    pub fn mark_fp(&mut self, fu: usize, start: u64, end: u64) {
        Self::bump(&mut self.fp_fu_diff[fu], start, end);
    }

    /// Records `n` instructions dispatched (decoded) in `cycle`.
    pub fn mark_decode(&mut self, cycle: u64, n: usize) {
        let c = cycle as usize;
        if self.decode_count.len() <= c {
            self.decode_count.resize(c + 1, 0);
        }
        self.decode_count[c] += n as u16;
    }

    /// Records a register-file entry vulnerable over `[start, end]` cycles
    /// (inclusive, matching the liveness intervals of `RenameState`).
    pub fn mark_regfile(&mut self, start: u64, end: u64) {
        Self::bump(&mut self.rf_diff, start, end + 1);
    }

    /// Materializes the four traces over `total_cycles` simulated cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `total_cycles` is zero.
    pub fn finish(self, total_cycles: u64) -> Result<ProcessorMaskingTraces, SerrError> {
        if total_cycles == 0 {
            return Err(SerrError::invalid_trace("simulation produced no cycles"));
        }
        let n = total_cycles as usize;

        // A unit-kind's vulnerability: fraction of its FU instances with any
        // occupancy in the cycle.
        let fu_fraction = |fus: &[Vec<i32>]| -> Vec<f64> {
            let mut frac = vec![0.0f64; n];
            for diff in fus {
                let mut occ = 0i64;
                for (c, slot) in frac.iter_mut().enumerate() {
                    occ += i64::from(diff.get(c).copied().unwrap_or(0));
                    if occ > 0 {
                        *slot += 1.0;
                    }
                }
            }
            let k = fus.len() as f64;
            frac.iter_mut().for_each(|v| *v /= k);
            frac
        };

        let int_levels = fu_fraction(&self.int_fu_diff);
        let fp_levels = fu_fraction(&self.fp_fu_diff);

        let decode_levels: Vec<f64> = (0..n)
            .map(|c| {
                let d = self.decode_count.get(c).copied().unwrap_or(0) as f64;
                (d / self.dispatch_width as f64).min(1.0)
            })
            .collect();

        let mut live = 0i64;
        let rf_levels: Vec<f64> = (0..n)
            .map(|c| {
                live += i64::from(self.rf_diff.get(c).copied().unwrap_or(0));
                (live.max(0) as f64 / self.regfile_entries as f64).min(1.0)
            })
            .collect();

        Ok(ProcessorMaskingTraces {
            int_unit: IntervalTrace::from_levels(&int_levels)?,
            fp_unit: IntervalTrace::from_levels(&fp_levels)?,
            decode: IntervalTrace::from_levels(&decode_levels)?,
            regfile: IntervalTrace::from_levels(&rf_levels)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::VulnerabilityTrace;

    #[test]
    fn unit_fraction_counts_busy_instances() {
        let mut mc = MaskingCollector::new(2, 2, 5, 256);
        mc.mark_int(0, 0, 4); // FU0 busy cycles 0..4
        mc.mark_int(1, 2, 3); // FU1 busy cycle 2
        let traces = mc.finish(6).unwrap();
        assert_eq!(traces.int_unit.vulnerability_at(0), 0.5);
        assert_eq!(traces.int_unit.vulnerability_at(2), 1.0);
        assert_eq!(traces.int_unit.vulnerability_at(3), 0.5);
        assert_eq!(traces.int_unit.vulnerability_at(4), 0.0);
        assert_eq!(traces.fp_unit.avf(), 0.0);
    }

    #[test]
    fn overlapping_pipelined_ops_still_one_busy_unit() {
        let mut mc = MaskingCollector::new(2, 2, 5, 256);
        // Three overlapping multiplies in the same FU: occupancy 3, busy 1.
        mc.mark_int(0, 0, 4);
        mc.mark_int(0, 1, 5);
        mc.mark_int(0, 2, 6);
        let traces = mc.finish(8).unwrap();
        assert_eq!(traces.int_unit.vulnerability_at(3), 0.5);
        assert_eq!(traces.int_unit.vulnerability_at(5), 0.5);
        assert_eq!(traces.int_unit.vulnerability_at(6), 0.0);
    }

    #[test]
    fn decode_fraction_of_dispatch_width() {
        let mut mc = MaskingCollector::new(2, 2, 5, 256);
        mc.mark_decode(0, 5);
        mc.mark_decode(1, 2);
        let traces = mc.finish(3).unwrap();
        assert_eq!(traces.decode.vulnerability_at(0), 1.0);
        assert_eq!(traces.decode.vulnerability_at(1), 0.4);
        assert_eq!(traces.decode.vulnerability_at(2), 0.0);
    }

    #[test]
    fn regfile_liveness_accumulates() {
        let mut mc = MaskingCollector::new(2, 2, 5, 256);
        mc.mark_regfile(0, 3);
        mc.mark_regfile(2, 5);
        let traces = mc.finish(8).unwrap();
        assert_eq!(traces.regfile.vulnerability_at(0), 1.0 / 256.0);
        assert_eq!(traces.regfile.vulnerability_at(2), 2.0 / 256.0);
        assert_eq!(traces.regfile.vulnerability_at(4), 1.0 / 256.0);
        assert_eq!(traces.regfile.vulnerability_at(6), 0.0);
    }

    #[test]
    fn zero_cycles_is_an_error() {
        let mc = MaskingCollector::new(2, 2, 5, 256);
        assert!(mc.finish(0).is_err());
    }

    #[test]
    fn marks_beyond_horizon_are_clipped_to_period() {
        let mut mc = MaskingCollector::new(1, 1, 5, 256);
        mc.mark_int(0, 2, 10);
        // Simulation ended at cycle 5: the trace only spans 5 cycles.
        let traces = mc.finish(5).unwrap();
        assert_eq!(traces.int_unit.period_cycles(), 5);
        assert_eq!(traces.int_unit.vulnerability_at(4), 1.0);
    }
}
