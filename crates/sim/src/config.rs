//! The simulated machine configuration (paper Table 1).

use serde::{Deserialize, Serialize};
use serr_types::{Frequency, SerrError};

use crate::predictor::BranchPredictorKind;

/// Configuration of the simulated out-of-order core and memory hierarchy.
///
/// [`SimConfig::power4`] reproduces the paper's Table 1 exactly; every field
/// is public so ablations can perturb the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core clock (Table 1: 2.0 GHz).
    pub frequency: Frequency,
    /// Instructions fetched per cycle (Table 1: 8).
    pub fetch_width: usize,
    /// Instructions dispatched (decoded/renamed) per cycle — one dispatch
    /// group (Table 1: 5 max).
    pub dispatch_width: usize,
    /// Dispatch groups retired per cycle (Table 1: 1).
    pub retire_width: usize,
    /// Reorder buffer entries (Table 1: 150).
    pub rob_size: usize,
    /// Integer functional units (Table 1: 2).
    pub int_units: usize,
    /// Floating-point functional units (Table 1: 2).
    pub fp_units: usize,
    /// Load/store units (Table 1: 2).
    pub ls_units: usize,
    /// Branch units (Table 1: 1).
    pub branch_units: usize,
    /// Integer add/logical latency (Table 1: 1).
    pub int_alu_latency: u64,
    /// Integer multiply latency, pipelined (Table 1: 4).
    pub int_mul_latency: u64,
    /// Integer divide latency, blocking (Table 1: 35).
    pub int_div_latency: u64,
    /// Default FP latency, pipelined (Table 1: 5).
    pub fp_latency: u64,
    /// FP divide latency, pipelined (Table 1: 28).
    pub fp_div_latency: u64,
    /// Branch resolution latency.
    pub branch_latency: u64,
    /// Physical integer registers (Table 1: 80 of the 256-entry file).
    pub int_phys_regs: usize,
    /// Physical FP registers (Table 1: 72 of the 256-entry file).
    pub fp_phys_regs: usize,
    /// Total register-file entries used as the vulnerability denominator
    /// (Table 1: 256 including control registers).
    pub regfile_entries: usize,
    /// Memory queue entries (Table 1: 32).
    pub mem_queue_size: usize,
    /// L1 D-cache: (bytes, associativity). Table 1: 32 KB, 2-way.
    pub l1d: (usize, usize),
    /// L1 I-cache: (bytes, associativity). Table 1: 64 KB, 1-way.
    pub l1i: (usize, usize),
    /// Unified L2: (bytes, associativity). Table 1: 1 MB, 4-way.
    pub l2: (usize, usize),
    /// Cache line size in bytes (Table 1: 128).
    pub line_bytes: usize,
    /// L1 hit latency (Table 1: 1).
    pub l1_latency: u64,
    /// L2 hit latency (Table 1: 10).
    pub l2_latency: u64,
    /// Main memory latency (Table 1: 77).
    pub mem_latency: u64,
    /// iTLB/dTLB entries (Table 1: 128 each).
    pub tlb_entries: usize,
    /// Page size for TLB indexing (4 KB; not in Table 1).
    pub page_bytes: usize,
    /// Added penalty of a TLB miss in cycles (not in Table 1; modeled as a
    /// table walk hitting the L2).
    pub tlb_miss_penalty: u64,
    /// Synthetic hot-code footprint in bytes: the PC walks and jumps within
    /// this region, modeling loop-dominated SPEC control flow (not in
    /// Table 1; documented in DESIGN.md).
    pub code_footprint_bytes: u64,
    /// Front-end branch prediction model (the paper uses statistical trace
    /// annotation; real predictors are available as an ablation).
    pub branch_predictor: BranchPredictorKind,
    /// Miss-status holding registers: outstanding L1D misses the memory
    /// system sustains concurrently (bounds memory-level parallelism).
    pub mshrs: usize,
    /// Next-line prefetch into L1D on a demand miss (ablation knob).
    pub l1d_next_line_prefetch: bool,
}

impl SimConfig {
    /// The paper's base POWER4-like configuration (Table 1).
    #[must_use]
    pub fn power4() -> Self {
        SimConfig {
            frequency: Frequency::base(),
            fetch_width: 8,
            dispatch_width: 5,
            retire_width: 5,
            rob_size: 150,
            int_units: 2,
            fp_units: 2,
            ls_units: 2,
            branch_units: 1,
            int_alu_latency: 1,
            int_mul_latency: 4,
            int_div_latency: 35,
            fp_latency: 5,
            fp_div_latency: 28,
            branch_latency: 1,
            int_phys_regs: 80,
            fp_phys_regs: 72,
            regfile_entries: 256,
            mem_queue_size: 32,
            l1d: (32 * 1024, 2),
            l1i: (64 * 1024, 1),
            l2: (1024 * 1024, 4),
            line_bytes: 128,
            l1_latency: 1,
            l2_latency: 10,
            mem_latency: 77,
            tlb_entries: 128,
            page_bytes: 4096,
            tlb_miss_penalty: 20,
            code_footprint_bytes: 48 * 1024,
            branch_predictor: BranchPredictorKind::TraceAnnotation,
            mshrs: 8,
            l1d_next_line_prefetch: false,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] on a zero width/size or a
    /// physical register file smaller than the architectural one.
    pub fn validate(&self) -> Result<(), SerrError> {
        let positive = [
            ("fetch width", self.fetch_width),
            ("dispatch width", self.dispatch_width),
            ("retire width", self.retire_width),
            ("rob size", self.rob_size),
            ("int units", self.int_units),
            ("fp units", self.fp_units),
            ("ls units", self.ls_units),
            ("branch units", self.branch_units),
            ("mem queue", self.mem_queue_size),
            ("tlb entries", self.tlb_entries),
            ("mshrs", self.mshrs),
        ];
        for (what, v) in positive {
            if v == 0 {
                return Err(SerrError::invalid_config(format!("{what} must be positive")));
            }
        }
        let arch = serr_workload::RegId::BANK_SIZE as usize;
        if self.int_phys_regs < arch + 1 || self.fp_phys_regs < arch + 1 {
            return Err(SerrError::invalid_config(
                "physical register banks must exceed the 32 architectural registers",
            ));
        }
        if self.regfile_entries < self.int_phys_regs + self.fp_phys_regs {
            return Err(SerrError::invalid_config(
                "register file entries must cover both physical banks",
            ));
        }
        if !self.line_bytes.is_power_of_two() || !self.page_bytes.is_power_of_two() {
            return Err(SerrError::invalid_config("line and page sizes must be powers of two"));
        }
        for (what, (bytes, ways)) in [("L1D", self.l1d), ("L1I", self.l1i), ("L2", self.l2)] {
            if ways == 0 || bytes == 0 || bytes % (ways * self.line_bytes) != 0 {
                return Err(SerrError::invalid_config(format!(
                    "{what} geometry {bytes}B/{ways}-way incompatible with {}B lines",
                    self.line_bytes
                )));
            }
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::power4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power4_matches_table1() {
        let c = SimConfig::power4();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.dispatch_width, 5);
        assert_eq!(c.rob_size, 150);
        assert_eq!((c.int_units, c.fp_units, c.ls_units, c.branch_units), (2, 2, 2, 1));
        assert_eq!((c.int_alu_latency, c.int_mul_latency, c.int_div_latency), (1, 4, 35));
        assert_eq!((c.fp_latency, c.fp_div_latency), (5, 28));
        assert_eq!((c.int_phys_regs, c.fp_phys_regs, c.regfile_entries), (80, 72, 256));
        assert_eq!(c.mem_queue_size, 32);
        assert_eq!(c.l1d, (32 * 1024, 2));
        assert_eq!(c.l1i, (64 * 1024, 1));
        assert_eq!(c.l2, (1024 * 1024, 4));
        assert_eq!((c.l1_latency, c.l2_latency, c.mem_latency), (1, 10, 77));
        assert_eq!(c.tlb_entries, 128);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_broken_configs() {
        let mut c = SimConfig::power4();
        c.rob_size = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::power4();
        c.int_phys_regs = 16;
        assert!(c.validate().is_err());

        let mut c = SimConfig::power4();
        c.l1d = (1000, 3); // not divisible by ways*line
        assert!(c.validate().is_err());

        let mut c = SimConfig::power4();
        c.regfile_entries = 100;
        assert!(c.validate().is_err());
    }
}
