//! Branch direction predictors.
//!
//! The paper's trace-driven methodology annotates branches with a
//! statistical misprediction rate ([`BranchPredictorKind::TraceAnnotation`]);
//! this module additionally models real history-based predictors so the
//! front-end stall structure of the masking traces can be studied as an
//! ablation rather than assumed.

use serde::{Deserialize, Serialize};

/// Which front-end prediction model the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BranchPredictorKind {
    /// Use the trace's statistical misprediction annotation (the paper's
    /// methodology; mispredict rate equals the benchmark profile's).
    #[default]
    TraceAnnotation,
    /// Per-site 2-bit saturating counters with `entries` slots.
    Bimodal {
        /// Table entries (power of two).
        entries: usize,
    },
    /// Global-history-XOR-site indexed 2-bit counters.
    Gshare {
        /// Table entries (power of two).
        entries: usize,
        /// Global history bits folded into the index.
        history_bits: u32,
    },
}

/// A direction predictor: predict, then learn the outcome.
pub trait DirectionPredictor: Send {
    /// Predicts whether the branch at `site` is taken.
    fn predict(&mut self, site: u32) -> bool;
    /// Trains on the resolved outcome.
    fn update(&mut self, site: u32, taken: bool);
}

/// Two-bit saturating counter helper: 0,1 predict not-taken; 2,3 taken.
fn counter_predict(c: u8) -> bool {
    c >= 2
}

fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// Per-site 2-bit saturating counters (Smith predictor).
///
/// ```
/// use serr_sim::predictor::{Bimodal, DirectionPredictor};
/// let mut p = Bimodal::new(64);
/// for _ in 0..4 {
///     p.update(7, true);
/// }
/// assert!(p.predict(7));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a table of `entries` counters, initialized weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        Bimodal { table: vec![1; entries], mask: entries - 1 }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, site: u32) -> bool {
        counter_predict(self.table[site as usize & self.mask])
    }

    fn update(&mut self, site: u32, taken: bool) {
        let slot = &mut self.table[site as usize & self.mask];
        *slot = counter_update(*slot, taken);
    }
}

/// Gshare: 2-bit counters indexed by `site XOR global-history`.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: usize,
    history: u32,
    history_mask: u32,
}

impl Gshare {
    /// Creates a gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two or `history_bits`
    /// exceeds 31.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        assert!(history_bits <= 31, "history must fit a u32");
        Gshare {
            table: vec![1; entries],
            mask: entries - 1,
            history: 0,
            history_mask: (1u32 << history_bits) - 1,
        }
    }

    fn index(&self, site: u32) -> usize {
        ((site ^ (self.history & self.history_mask)) as usize) & self.mask
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, site: u32) -> bool {
        counter_predict(self.table[self.index(site)])
    }

    fn update(&mut self, site: u32, taken: bool) {
        let idx = self.index(site);
        self.table[idx] = counter_update(self.table[idx], taken);
        self.history = (self.history << 1) | u32::from(taken);
    }
}

/// Instantiates the configured predictor, or `None` for annotation mode.
#[must_use]
pub fn build(kind: BranchPredictorKind) -> Option<Box<dyn DirectionPredictor>> {
    match kind {
        BranchPredictorKind::TraceAnnotation => None,
        BranchPredictorKind::Bimodal { entries } => Some(Box::new(Bimodal::new(entries))),
        BranchPredictorKind::Gshare { entries, history_bits } => {
            Some(Box::new(Gshare::new(entries, history_bits)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic site population mirroring the trace generator's bimodal
    /// bias distribution.
    fn biased_stream(n: usize, seed: u64) -> Vec<(u32, bool)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let biases: Vec<f64> = (0..256)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                if u < 0.4 {
                    0.95
                } else if u < 0.8 {
                    0.05
                } else {
                    0.5
                }
            })
            .collect();
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let site = ((u * u) * 256.0) as u32;
                let taken = rng.gen_range(0.0..1.0) < biases[site as usize];
                (site, taken)
            })
            .collect()
    }

    fn accuracy(p: &mut dyn DirectionPredictor, stream: &[(u32, bool)]) -> f64 {
        let mut hits = 0usize;
        for &(site, taken) in stream {
            if p.predict(site) == taken {
                hits += 1;
            }
            p.update(site, taken);
        }
        hits as f64 / stream.len() as f64
    }

    #[test]
    fn counters_saturate() {
        let mut c = 1u8;
        for _ in 0..10 {
            c = counter_update(c, true);
        }
        assert_eq!(c, 3);
        for _ in 0..10 {
            c = counter_update(c, false);
        }
        assert_eq!(c, 0);
        assert!(!counter_predict(1));
        assert!(counter_predict(2));
    }

    #[test]
    fn bimodal_learns_biased_sites() {
        let stream = biased_stream(100_000, 11);
        let acc = accuracy(&mut Bimodal::new(1024), &stream);
        assert!(acc > 0.85, "bimodal accuracy {acc}");
    }

    #[test]
    fn bimodal_aliasing_hurts() {
        // A 4-entry table aliases 256 sites: accuracy must drop measurably.
        let stream = biased_stream(100_000, 11);
        let big = accuracy(&mut Bimodal::new(1024), &stream);
        let tiny = accuracy(&mut Bimodal::new(4), &stream);
        assert!(big > tiny + 0.03, "big {big} vs tiny {tiny}");
    }

    #[test]
    fn gshare_needs_correlation_bimodal_needs_bias() {
        // On history-UNcorrelated biased branches, gshare's history bits
        // are pure index noise: bimodal wins decisively. This is the
        // textbook failure mode, reproduced.
        let stream = biased_stream(100_000, 13);
        let bim = accuracy(&mut Bimodal::new(1024), &stream);
        let gs = accuracy(&mut Gshare::new(4096, 8), &stream);
        assert!(bim > gs + 0.1, "bimodal {bim} should beat gshare {gs} here");

        // On a history-CORRELATED pattern (period-4 T,T,N,T at one site),
        // gshare learns the pattern and approaches perfection while
        // bimodal saturates at the majority direction (75%).
        let pattern: Vec<(u32, bool)> = (0..40_000).map(|i| (7u32, i % 4 != 2)).collect();
        let bim = accuracy(&mut Bimodal::new(1024), &pattern);
        let gs = accuracy(&mut Gshare::new(4096, 8), &pattern);
        assert!(gs > 0.95, "gshare should learn the pattern: {gs}");
        assert!(bim < 0.80, "bimodal cannot: {bim}");
    }

    #[test]
    fn build_dispatches() {
        assert!(build(BranchPredictorKind::TraceAnnotation).is_none());
        assert!(build(BranchPredictorKind::Bimodal { entries: 64 }).is_some());
        assert!(build(BranchPredictorKind::Gshare { entries: 64, history_bits: 6 }).is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Bimodal::new(100);
    }
}
