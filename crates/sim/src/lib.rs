//! A trace-driven, cycle-level, out-of-order superscalar timing simulator —
//! the workspace's substitute for IBM's Turandot (paper Section 4.1).
//!
//! The paper generates masking traces by running SPEC CPU2000 through
//! Turandot configured as the POWER4-like core of Table 1. Turandot is
//! closed source; this crate implements a comparable machine:
//!
//! * 8-wide fetch with an L1 I-cache, iTLB, and misprediction stalls;
//! * dispatch groups of 5 into a 150-entry reorder buffer with register
//!   renaming onto an 80-integer + 72-FP physical file;
//! * 2 integer, 2 floating-point, 2 load/store, and 1 branch unit with
//!   Table 1 latencies (integer 1/4/35 add/mul/div; FP 5, divide 28);
//! * a 32-entry memory queue in front of L1D (32 KB, 2-way) → L2 (1 MB,
//!   4-way) → memory at 1/10/77-cycle latencies, with a 128-entry dTLB;
//! * in-order retirement of one dispatch group per cycle.
//!
//! While it simulates, a [`masking::MaskingCollector`] records the paper's
//! four component masking traces: integer-unit, FP-unit, and decode-unit
//! busy cycles (conservative: busy ⇒ unmasked) and register-file liveness
//! (an entry is vulnerable from the cycle its value is produced until its
//! last read).
//!
//! # Example
//!
//! ```
//! use serr_sim::{SimConfig, Simulator};
//! use serr_trace::VulnerabilityTrace;
//! use serr_workload::{BenchmarkProfile, TraceGenerator};
//!
//! let profile = BenchmarkProfile::by_name("gzip").unwrap();
//! let gen = TraceGenerator::new(profile, 1);
//! let out = Simulator::new(SimConfig::power4()).run(gen, 20_000).unwrap();
//! assert!(out.stats.ipc() > 0.3 && out.stats.ipc() < 8.0);
//! assert!(out.traces.int_unit.avf() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod masking;
pub mod predictor;

mod config;
mod engine;
mod regfile;

pub use config::SimConfig;
pub use engine::{SimOutput, SimStats, Simulator};
pub use masking::ProcessorMaskingTraces;
