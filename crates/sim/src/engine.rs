//! The cycle-driven out-of-order pipeline.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use serr_types::SerrError;
use serr_workload::{Instruction, OpClass, RegId};

use crate::cache::{Cache, Tlb};
use crate::masking::{MaskingCollector, ProcessorMaskingTraces};
use crate::predictor;
use crate::regfile::{PhysReg, RenameState};
use crate::SimConfig;

/// Aggregate statistics from one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L1 I-cache miss rate.
    pub l1i_miss_rate: f64,
    /// L1 D-cache miss rate.
    pub l1d_miss_rate: f64,
    /// Unified L2 miss rate.
    pub l2_miss_rate: f64,
    /// dTLB miss rate.
    pub dtlb_miss_rate: f64,
    /// Branches the front end mispredicted.
    pub branch_mispredicts: u64,
    /// Cycles in which dispatch made no progress while work remained.
    pub dispatch_stall_cycles: u64,
    /// Dirty L1D lines written back to the L2.
    pub l1d_writebacks: u64,
}

impl SimStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The result of a simulation: statistics plus the four masking traces the
/// paper's methodology consumes.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Performance and memory-hierarchy statistics.
    pub stats: SimStats,
    /// Component masking traces with period = simulated cycles.
    pub traces: ProcessorMaskingTraces,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EntryState {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug)]
struct Entry {
    op: OpClass,
    srcs: [Option<PhysReg>; 2],
    dst: Option<PhysReg>,
    prev_dst: Option<PhysReg>,
    mem_addr: Option<u64>,
    index: u64,
    state: EntryState,
    done_at: u64,
    /// Holds an MSHR until writeback (the access missed the L1D).
    holds_mshr: bool,
}

/// The trace-driven out-of-order timing simulator (see crate docs).
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`SimConfig::validate`]
    /// for fallible checking.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("invalid simulator configuration");
        Simulator { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `instructions` instructions from `workload` to completion and
    /// returns statistics plus masking traces.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for a zero instruction budget,
    /// [`SerrError::InvalidTrace`] if the workload iterator ends early, and
    /// [`SerrError::NoConvergence`] if the pipeline stops making progress
    /// (a bug guard; should not occur).
    pub fn run(
        &self,
        workload: impl IntoIterator<Item = Instruction>,
        instructions: u64,
    ) -> Result<SimOutput, SerrError> {
        if instructions == 0 {
            return Err(SerrError::invalid_config("instruction budget must be positive"));
        }
        let cfg = &self.config;
        let mut source = workload.into_iter();

        let mut l1i = Cache::new(cfg.l1i.0, cfg.l1i.1, cfg.line_bytes);
        let mut l1d = Cache::new(cfg.l1d.0, cfg.l1d.1, cfg.line_bytes);
        let mut l2 = Cache::new(cfg.l2.0, cfg.l2.1, cfg.line_bytes);
        let mut itlb = Tlb::new(cfg.tlb_entries, cfg.page_bytes);
        let mut dtlb = Tlb::new(cfg.tlb_entries, cfg.page_bytes);
        let mut rename = RenameState::new(cfg.int_phys_regs, cfg.fp_phys_regs);
        let mut collector = MaskingCollector::new(
            cfg.int_units,
            cfg.fp_units,
            cfg.dispatch_width,
            cfg.regfile_entries,
        );

        let mut ready_int = vec![false; cfg.int_phys_regs];
        let mut ready_fp = vec![false; cfg.fp_phys_regs];
        for i in 0..RegId::BANK_SIZE as usize {
            ready_int[i] = true;
            ready_fp[i] = true;
        }
        let ready = |ri: &[bool], rf: &[bool], p: PhysReg| {
            if p.fp {
                rf[p.idx as usize]
            } else {
                ri[p.idx as usize]
            }
        };

        // Per-FU bookkeeping: blocking ops hold `busy_until`; every FU
        // accepts at most one new op per cycle.
        let mut int_busy_until = vec![0u64; cfg.int_units];
        let fp_busy_until = vec![0u64; cfg.fp_units]; // FP ops are all pipelined
        let mut ls_taken; // per-cycle issue slots
        let mut br_taken;
        let mut int_taken = vec![false; cfg.int_units];
        let mut fp_taken = vec![false; cfg.fp_units];

        let mut outstanding_misses = 0usize;
        let mut rob: VecDeque<Entry> = VecDeque::with_capacity(cfg.rob_size);
        let mut fetch_buffer: VecDeque<(Instruction, u64)> =
            VecDeque::with_capacity(2 * cfg.fetch_width);
        let mut mem_in_flight = 0usize;

        let mut now: u64 = 0;
        let mut fetched: u64 = 0;
        let mut retired: u64 = 0;
        let mut mispredicts: u64 = 0;
        let mut dispatch_stalls: u64 = 0;

        // Front-end control state.
        let mut direction_predictor = predictor::build(cfg.branch_predictor);
        let mut pc: u64 = 0;
        let mut icache_stall_until: u64 = 0;
        let mut redirect_on: Option<u64> = None; // instruction index of an
                                                 // unresolved mispredicted branch
        let mut prng: u64 = 0x1234_5678_9abc_def0; // deterministic branch targets

        let mut last_progress = 0u64;
        let watchdog = 200_000u64;

        loop {
            let mut progressed = false;

            // ---- Writeback: complete executing ops. -----------------------
            for e in rob.iter_mut() {
                if e.state == EntryState::Executing && e.done_at <= now {
                    e.state = EntryState::Done;
                    if e.holds_mshr {
                        e.holds_mshr = false;
                        outstanding_misses -= 1;
                    }
                    if let Some(d) = e.dst {
                        if d.fp {
                            ready_fp[d.idx as usize] = true;
                        } else {
                            ready_int[d.idx as usize] = true;
                        }
                        rename.record_write(d, now);
                    }
                    if redirect_on == Some(e.index) {
                        redirect_on = None; // fetch resumes next cycle
                    }
                    progressed = true;
                }
            }

            // ---- Retire: in-order, one dispatch group per cycle. ----------
            let mut retired_now = 0usize;
            while retired_now < cfg.retire_width {
                match rob.front() {
                    Some(e) if e.state == EntryState::Done => {
                        let e = rob.pop_front().expect("front exists");
                        if let Some(prev) = e.prev_dst {
                            rename.release(prev);
                        }
                        if e.op.is_memory() {
                            mem_in_flight -= 1;
                        }
                        retired += 1;
                        retired_now += 1;
                        progressed = true;
                    }
                    _ => break,
                }
            }

            // ---- Issue: out-of-order from the ROB. ------------------------
            int_taken.iter_mut().for_each(|t| *t = false);
            fp_taken.iter_mut().for_each(|t| *t = false);
            ls_taken = 0usize;
            br_taken = 0usize;
            for e in rob.iter_mut() {
                if e.state != EntryState::Waiting {
                    continue;
                }
                let deps_ready = e.srcs.iter().flatten().all(|&p| ready(&ready_int, &ready_fp, p));
                if !deps_ready {
                    continue;
                }
                let issued = match e.op {
                    OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => {
                        let latency = match e.op {
                            OpClass::IntAlu => cfg.int_alu_latency,
                            OpClass::IntMul => cfg.int_mul_latency,
                            _ => cfg.int_div_latency,
                        };
                        let slot =
                            (0..cfg.int_units).find(|&f| !int_taken[f] && int_busy_until[f] <= now);
                        if let Some(f) = slot {
                            int_taken[f] = true;
                            if e.op == OpClass::IntDiv {
                                // Divides block their unit (not pipelined).
                                int_busy_until[f] = now + latency;
                            }
                            collector.mark_int(f, now, now + latency);
                            e.done_at = now + latency;
                            true
                        } else {
                            false
                        }
                    }
                    OpClass::FpOp | OpClass::FpDiv => {
                        let latency = if e.op == OpClass::FpDiv {
                            cfg.fp_div_latency
                        } else {
                            cfg.fp_latency
                        };
                        let slot =
                            (0..cfg.fp_units).find(|&f| !fp_taken[f] && fp_busy_until[f] <= now);
                        if let Some(f) = slot {
                            fp_taken[f] = true;
                            collector.mark_fp(f, now, now + latency);
                            e.done_at = now + latency;
                            true
                        } else {
                            false
                        }
                    }
                    OpClass::Load | OpClass::Store => {
                        let addr = e.mem_addr.expect("memory op has an address");
                        // MSHR gate: a miss may only start if a miss
                        // register is free (probe is side-effect free).
                        let will_miss = !l1d.probe(addr);
                        if ls_taken < cfg.ls_units && (!will_miss || outstanding_misses < cfg.mshrs)
                        {
                            ls_taken += 1;
                            let tlb_pen = if dtlb.access(addr) { 0 } else { cfg.tlb_miss_penalty };
                            let is_write = e.op == OpClass::Store;
                            let l1 = l1d.access_rw(addr, is_write);
                            let access = if l1.hit {
                                cfg.l1_latency
                            } else {
                                // Dirty victim updates the L2; demand fill
                                // follows.
                                if l1.writeback {
                                    let _ = l2.access_rw(addr ^ 0x4_0000, true);
                                }
                                if cfg.l1d_next_line_prefetch {
                                    let next = addr + cfg.line_bytes as u64;
                                    if !l1d.probe(next) && l2.probe(next) {
                                        let _ = l1d.install(next);
                                    }
                                }
                                if l2.access_rw(addr, false).hit {
                                    cfg.l2_latency
                                } else {
                                    cfg.mem_latency
                                }
                            };
                            if !l1.hit {
                                e.holds_mshr = true;
                                outstanding_misses += 1;
                            }
                            e.done_at = now + 1 + access + tlb_pen;
                            true
                        } else {
                            false
                        }
                    }
                    OpClass::Branch => {
                        if br_taken < cfg.branch_units {
                            br_taken += 1;
                            e.done_at = now + cfg.branch_latency;
                            true
                        } else {
                            false
                        }
                    }
                };
                if issued {
                    e.state = EntryState::Executing;
                    for &src in e.srcs.iter().flatten() {
                        rename.record_read(src, now);
                    }
                    progressed = true;
                }
            }

            // ---- Dispatch: in-order into the ROB. -------------------------
            let mut dispatched = 0usize;
            while dispatched < cfg.dispatch_width {
                let Some((inst, index)) = fetch_buffer.front().copied() else { break };
                if rob.len() >= cfg.rob_size {
                    break;
                }
                if inst.op.is_memory() && mem_in_flight >= cfg.mem_queue_size {
                    break;
                }
                if let Some(d) = inst.dst {
                    if !rename.can_rename(d) {
                        break;
                    }
                }
                fetch_buffer.pop_front();
                let srcs = inst.srcs.map(|s| s.map(|a| rename.lookup(a)));
                let (dst, prev_dst) = match inst.dst {
                    Some(d) => {
                        let (new, prev) = rename.rename(d);
                        if new.fp {
                            ready_fp[new.idx as usize] = false;
                        } else {
                            ready_int[new.idx as usize] = false;
                        }
                        (Some(new), Some(prev))
                    }
                    None => (None, None),
                };
                if inst.op.is_memory() {
                    mem_in_flight += 1;
                }
                rob.push_back(Entry {
                    op: inst.op,
                    srcs,
                    dst,
                    prev_dst,
                    mem_addr: inst.mem_addr,
                    index,
                    state: EntryState::Waiting,
                    done_at: 0,
                    holds_mshr: false,
                });
                dispatched += 1;
                progressed = true;
            }
            if dispatched > 0 {
                collector.mark_decode(now, dispatched);
            } else if !fetch_buffer.is_empty() || !rob.is_empty() {
                dispatch_stalls += 1;
            }

            // ---- Fetch: fill the buffer along the traced path. ------------
            if fetched < instructions
                && redirect_on.is_none()
                && icache_stall_until <= now
                && fetch_buffer.len() < 2 * cfg.fetch_width
            {
                let line_mask = !(cfg.line_bytes as u64 - 1);
                for _ in 0..cfg.fetch_width {
                    if fetch_buffer.len() >= 2 * cfg.fetch_width || fetched >= instructions {
                        break;
                    }
                    let Some(inst) = source.next() else {
                        return Err(SerrError::invalid_trace(format!(
                            "workload ended after {fetched} of {instructions} instructions"
                        )));
                    };
                    // Instruction-side memory behaviour: one I-cache/iTLB
                    // probe per new line.
                    // Sequential code wraps within the hot-code footprint,
                    // modeling loop-dominated SPEC control flow.
                    let prev_line = pc & line_mask;
                    pc = (pc + 4) % self.config.code_footprint_bytes;
                    let mut mispredicted = false;
                    if let Some(info) = inst.branch {
                        if info.taken {
                            // Taken branch: jump to the site's target within
                            // the code footprint.
                            prng = u64::from(info.site)
                                .wrapping_mul(6_364_136_223_846_793_005)
                                .wrapping_add(prng >> 32);
                            pc = ((prng >> 8) % self.config.code_footprint_bytes) & !3;
                        }
                        mispredicted = match direction_predictor.as_mut() {
                            None => info.mispredict_hint,
                            Some(p) => {
                                let predicted = p.predict(info.site);
                                p.update(info.site, info.taken);
                                predicted != info.taken
                            }
                        };
                        if mispredicted {
                            mispredicts += 1;
                        }
                    }
                    if pc & line_mask != prev_line {
                        let tlb_pen = if itlb.access(pc) { 0 } else { cfg.tlb_miss_penalty };
                        let hit = l1i.access(pc);
                        if !hit || tlb_pen > 0 {
                            let access = if hit {
                                0
                            } else if l2.access(pc) {
                                cfg.l2_latency
                            } else {
                                cfg.mem_latency
                            };
                            icache_stall_until = now + access + tlb_pen;
                        }
                    }
                    fetch_buffer.push_back((inst, fetched));
                    let stop_after = mispredicted;
                    if stop_after {
                        redirect_on = Some(fetched);
                    }
                    fetched += 1;
                    progressed = true;
                    if stop_after || icache_stall_until > now {
                        break;
                    }
                }
            }

            if progressed {
                last_progress = now;
            } else if now - last_progress > watchdog {
                return Err(SerrError::NoConvergence {
                    what: format!(
                        "pipeline deadlock at cycle {now}: rob={}, buffer={}, fetched={fetched}, retired={retired}",
                        rob.len(),
                        fetch_buffer.len()
                    ),
                    after: watchdog as usize,
                });
            }

            now += 1;
            if fetched >= instructions && rob.is_empty() && fetch_buffer.is_empty() {
                break;
            }
        }

        // Close register liveness and build traces.
        let total_cycles = now;
        for (start, end) in rename.finish() {
            collector.mark_regfile(start.min(total_cycles - 1), end.min(total_cycles - 1));
        }
        let traces = collector.finish(total_cycles)?;

        Ok(SimOutput {
            stats: SimStats {
                cycles: total_cycles,
                instructions: retired,
                l1i_miss_rate: l1i.miss_rate(),
                l1d_miss_rate: l1d.miss_rate(),
                l2_miss_rate: l2.miss_rate(),
                dtlb_miss_rate: dtlb.miss_rate(),
                branch_mispredicts: mispredicts,
                dispatch_stall_cycles: dispatch_stalls,
                l1d_writebacks: l1d.writebacks(),
            },
            traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::VulnerabilityTrace;
    use serr_workload::{BenchmarkProfile, TraceGenerator};

    fn run_bench(name: &str, n: u64) -> SimOutput {
        let profile = BenchmarkProfile::by_name(name).unwrap();
        Simulator::new(SimConfig::power4()).run(TraceGenerator::new(profile, 42), n).unwrap()
    }

    #[test]
    fn straight_line_alu_code_is_fast() {
        // Independent single-cycle ALU ops: IPC should approach the
        // dispatch width of 5.
        let insts: Vec<Instruction> = (0..100_000)
            .map(|i| Instruction::alu(OpClass::IntAlu, RegId::Int((i % 32) as u8), [None, None]))
            .collect();
        let out = Simulator::new(SimConfig::power4()).run(insts, 100_000).unwrap();
        assert_eq!(out.stats.instructions, 100_000);
        // Two single-cycle integer units bound steady-state IPC at 2.
        assert!(out.stats.ipc() > 1.2, "ipc {}", out.stats.ipc());
        assert!(out.stats.ipc() <= 2.05, "ipc {}", out.stats.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        // Each op reads the previous result: IPC near 1 at best.
        let insts: Vec<Instruction> = (0..2000)
            .map(|_| Instruction::alu(OpClass::IntAlu, RegId::Int(0), [Some(RegId::Int(0)), None]))
            .collect();
        let out = Simulator::new(SimConfig::power4()).run(insts, 2000).unwrap();
        assert!(out.stats.ipc() <= 1.1, "ipc {}", out.stats.ipc());
    }

    #[test]
    fn divides_throttle_throughput() {
        let divs: Vec<Instruction> = (0..500)
            .map(|i| Instruction::alu(OpClass::IntDiv, RegId::Int((i % 32) as u8), [None, None]))
            .collect();
        let out = Simulator::new(SimConfig::power4()).run(divs, 500).unwrap();
        // 2 blocking 35-cycle dividers: at most ~2/35 IPC.
        assert!(out.stats.ipc() < 0.1, "ipc {}", out.stats.ipc());
        // And the integer units are busy nearly all the time.
        assert!(out.traces.int_unit.avf() > 0.8, "int avf {}", out.traces.int_unit.avf());
    }

    #[test]
    fn benchmarks_run_with_plausible_ipc_and_traces() {
        for name in ["gzip", "mcf", "swim"] {
            let out = run_bench(name, 30_000);
            let ipc = out.stats.ipc();
            assert!(ipc > 0.03 && ipc < 5.0, "{name} ipc {ipc}");
            let t = &out.traces;
            for (unit, avf) in [
                ("int", t.int_unit.avf()),
                ("decode", t.decode.avf()),
                ("regfile", t.regfile.avf()),
            ] {
                assert!(avf > 0.0 && avf <= 1.0, "{name} {unit} avf {avf}");
            }
            assert_eq!(t.int_unit.period_cycles(), out.stats.cycles);
            assert_eq!(t.regfile.period_cycles(), out.stats.cycles);
        }
    }

    #[test]
    fn fp_benchmark_exercises_fp_units_int_benchmark_does_not() {
        let fp = run_bench("swim", 30_000);
        let int = run_bench("bzip2", 30_000);
        assert!(fp.traces.fp_unit.avf() > 0.1, "swim fp avf {}", fp.traces.fp_unit.avf());
        assert_eq!(int.traces.fp_unit.avf(), 0.0, "bzip2 must not use FP units");
        assert!(int.traces.int_unit.avf() > fp.traces.int_unit.avf());
    }

    #[test]
    fn memory_bound_benchmark_misses_more() {
        let mcf = run_bench("mcf", 30_000);
        let gzip = run_bench("gzip", 30_000);
        assert!(
            mcf.stats.l1d_miss_rate > gzip.stats.l1d_miss_rate,
            "mcf {} vs gzip {}",
            mcf.stats.l1d_miss_rate,
            gzip.stats.l1d_miss_rate
        );
        assert!(mcf.stats.ipc() < gzip.stats.ipc());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run_bench("gcc", 10_000);
        let b = run_bench("gcc", 10_000);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.traces.int_unit, b.traces.int_unit);
        assert_eq!(a.traces.regfile, b.traces.regfile);
    }

    #[test]
    fn rejects_bad_budgets_and_short_workloads() {
        let sim = Simulator::new(SimConfig::power4());
        assert!(sim.run(Vec::<Instruction>::new(), 0).is_err());
        let two = vec![Instruction::alu(OpClass::IntAlu, RegId::Int(0), [None, None]); 2];
        assert!(sim.run(two, 5).is_err());
    }

    #[test]
    fn program_phases_create_coarse_masking_structure() {
        // Two identical profiles, one with a fast-alternating memory phase:
        // the phased one must show visibly larger window-to-window
        // *alternation* in decode utilization (mean successive difference,
        // which is insensitive to the cold-cache warmup ramp).
        fn windowed_decode_util(phases: Option<serr_workload::PhaseBehavior>) -> f64 {
            let mut profile = BenchmarkProfile::by_name("vpr").unwrap();
            profile.phases = phases;
            let out = Simulator::new(SimConfig::power4())
                .run(TraceGenerator::new(profile, 123), 60_000)
                .unwrap();
            let t = &out.traces.decode;
            let cycles = out.stats.cycles;
            let windows = 12u64;
            let w = cycles / windows;
            let utils: Vec<f64> = (0..windows)
                .map(|i| {
                    (t.cumulative_within_period((i + 1) * w) - t.cumulative_within_period(i * w))
                        / w as f64
                })
                .collect();
            let mean = utils.iter().sum::<f64>() / utils.len() as f64;
            let alternation = utils.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
                / (utils.len() - 1) as f64;
            alternation / mean
        }
        let flat = windowed_decode_util(None);
        let phased = windowed_decode_util(Some(serr_workload::PhaseBehavior {
            period_instructions: 20_000,
            memory_fraction: 0.5,
        }));
        assert!(
            phased > 2.0 * flat,
            "phased alternation {phased} should dwarf flat alternation {flat}"
        );
    }

    #[test]
    fn mshrs_bound_memory_level_parallelism() {
        // mcf-like: mostly independent loads missing everywhere. One MSHR
        // serializes the misses; eight overlap them.
        let profile = BenchmarkProfile::by_name("mcf").unwrap();
        let run = |mshrs: usize| {
            let cfg = SimConfig { mshrs, ..SimConfig::power4() };
            Simulator::new(cfg)
                .run(TraceGenerator::new(profile.clone(), 42), 20_000)
                .unwrap()
                .stats
                .ipc()
        };
        let serial = run(1);
        let parallel = run(8);
        assert!(parallel > serial * 1.3, "mshr=8 ipc {parallel} should beat mshr=1 ipc {serial}");
    }

    #[test]
    fn next_line_prefetch_helps_sequential_code() {
        // gzip-like: 85% sequential accesses. Prefetching the next line
        // from the L2 must cut the L1D miss rate.
        let profile = BenchmarkProfile::by_name("gzip").unwrap();
        let run = |pf: bool| {
            let cfg = SimConfig { l1d_next_line_prefetch: pf, ..SimConfig::power4() };
            Simulator::new(cfg).run(TraceGenerator::new(profile.clone(), 42), 40_000).unwrap().stats
        };
        let off = run(false);
        let on = run(true);
        // Miss-triggered next-line prefetch converts at most every other
        // sequential miss (the prefetched line's own hit does not trigger
        // a further prefetch), so expect a solid but sub-2x reduction.
        assert!(on.l1d_miss_rate < off.l1d_miss_rate * 0.95, "prefetch {on:?} vs baseline {off:?}");
        assert!(on.cycles <= off.cycles, "prefetch should not slow execution");
    }

    #[test]
    fn stores_generate_writeback_traffic() {
        let profile = BenchmarkProfile::by_name("mcf").unwrap();
        let out = Simulator::new(SimConfig::power4())
            .run(TraceGenerator::new(profile, 42), 30_000)
            .unwrap();
        // Random-access stores over a 64 MiB working set must dirty and
        // evict lines.
        assert!(out.stats.l1d_writebacks > 100, "writebacks {}", out.stats.l1d_writebacks);
    }

    #[test]
    fn modeled_predictor_changes_flush_behavior() {
        use crate::predictor::BranchPredictorKind;
        let profile = BenchmarkProfile::by_name("gcc").unwrap();
        let run = |kind: BranchPredictorKind| {
            let cfg = SimConfig { branch_predictor: kind, ..SimConfig::power4() };
            Simulator::new(cfg).run(TraceGenerator::new(profile.clone(), 42), 40_000).unwrap().stats
        };
        let annotated = run(BranchPredictorKind::TraceAnnotation);
        let bimodal = run(BranchPredictorKind::Bimodal { entries: 4096 });
        // Annotation mode mispredicts at the profile rate (8% of ~19%
        // branches); the bimodal predictor on strongly biased sites does
        // a comparable or better job, and both runs complete with sane IPC.
        let branches = 40_000.0 * 0.19;
        let annotated_rate = annotated.branch_mispredicts as f64 / branches;
        let bimodal_rate = bimodal.branch_mispredicts as f64 / branches;
        assert!((annotated_rate - 0.08).abs() < 0.02, "annotated {annotated_rate}");
        assert!(bimodal_rate < 0.25, "bimodal {bimodal_rate}");
        assert!(bimodal.ipc() > 0.05);
    }

    #[test]
    fn regfile_vulnerability_is_fraction_of_256() {
        let out = run_bench("gzip", 20_000);
        // At most 152 of 256 modeled entries can ever be live.
        let max_v = (0..out.stats.cycles.min(5_000))
            .map(|c| out.traces.regfile.vulnerability_at(c))
            .fold(0.0f64, f64::max);
        assert!(max_v <= 152.0 / 256.0 + 1e-9, "max {max_v}");
        assert!(max_v > 0.02, "max {max_v}");
    }
}
