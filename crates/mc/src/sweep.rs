//! The shared-stream sweep kernel: one Monte Carlo pass over *many*
//! design points.
//!
//! # Why sweeps deserve their own kernel
//!
//! The paper's headline artifacts are sweeps — MTTF vs raw error rate
//! (Fig 5), MTTF/SOFR over `c × N·S` grids (Fig 6a/6b) — and a sweep
//! evaluated point-by-point regenerates an identical counter-RNG word
//! stream and identical `ln`/`ln_1p` batch passes for every λ, even
//! though the `Exp(1)` draws are λ-independent (`TTF = Λ⁻¹(E)`; only the
//! cheap inversion depends on the point). This is the classic
//! common-random-numbers design from the simulation literature: per
//! 1024-trial chunk the kernel runs
//! [`BatchedInversionSampler::prepare_chunk`] **once** — RNG words,
//! exponent-splice uniforms, the vectorized `Exp(1)` log, and
//! (stationary) the phase plane with its `V(φ)` pricing — then
//! re-inverts the shared buffers for each λ with
//! [`BatchedInversionSampler::finish_chunk`] (the per-point
//! `neg_inv_lambda_w` scaling plus `phase_at_cumulative_batch`). For an
//! M-point sweep the RNG + log work is paid once instead of M times, and
//! because every point consumes the *same* draws, sampling noise is
//! positively correlated across the curve — crossing points stop
//! jittering between neighboring design points.
//!
//! # Bit-identity contract
//!
//! Each point's estimate is **bit-identical** to an independent
//! [`MonteCarlo::component_mttf`] run with the same seed: the kernel uses
//! the same `(seed, chunk)` word schedule, the shared draws are consumed
//! with identical operands in identical operation order (the fused
//! single-point kernel *is* prepare + finish — see `crate::batched`), and
//! the per-point fold walks chunks in the same ascending order. The
//! kernel is likewise thread-count invariant at any `SERR_THREADS`, by
//! the same argument as the single-point engine: chunk streams key on the
//! chunk index, never the worker. `tests/sweep_equivalence.rs` pins both
//! properties.
//!
//! # The c-axis of Fig 6 rides the same kernel
//!
//! A system of `c` identical phase-aligned components superposes into a
//! single component at rate `c·λ` over the same trace
//! (`serr_mc::system`), so the c-axis of the Fig 6 grids *is* a λ-axis:
//! grouping a grid by trace reduces every cell to one shared-stream rate
//! sweep, reusing the per-component draw planes across `c` without
//! changing a single sampled bit.

use std::time::Instant;

use serr_numeric::stats::RunningStats;
use serr_obs::Event;
use serr_trace::{CompiledTrace, VulnerabilityTrace};
use serr_types::{Frequency, RawErrorRate, SerrError};

use crate::batched::{BatchedInversionSampler, PointScratch, SharedChunk};
use crate::config::SamplerKind;
use crate::engine::{chunk_seed, estimate_from_cycle_stats, MonteCarlo, MttfEstimate};

/// One chunk's outcome across every valid design point: per-point
/// statistics in point order, plus the chunk's wall time split between the
/// shared prepare pass and the per-point finish passes (folded into the
/// `stage.sweep_shared_ms` / `stage.sweep_point_ms` histograms on the main
/// thread).
struct MultiChunk {
    stats: Vec<RunningStats>,
    shared_ms: f64,
    point_ms: f64,
}

impl MonteCarlo {
    /// Estimates the MTTF of one component under *each* raw error rate in
    /// `rates`, sharing the expensive λ-independent sampling passes across
    /// all of them (see the [module docs](self)).
    ///
    /// Per-point semantics match [`MonteCarlo::component_mttf`] exactly:
    /// each returned entry is bit-identical to an independent run at that
    /// rate with the same configuration. A rate that is individually
    /// invalid (zero) yields a per-point `Err` without disturbing its
    /// neighbors. Samplers other than
    /// [`SamplerKind::BatchedInversion`] — and traces too large to
    /// compile — fall back to independent per-point runs, which *defines*
    /// the per-point result, so the equivalence is trivial there.
    ///
    /// # Errors
    ///
    /// Returns a top-level error only for faults that poison every point
    /// at once: an invalid configuration, an AVF-0 trace, an exhausted
    /// deadline before the first chunk, or an engine fault in a shared
    /// chunk — callers degrade **all** dependent points on it (one
    /// corrupted shared trace can never fail silently for a subset).
    pub fn component_mttf_multi(
        &self,
        trace: &dyn VulnerabilityTrace,
        rates: &[RawErrorRate],
        freq: Frequency,
    ) -> Result<Vec<Result<MttfEstimate, SerrError>>, SerrError> {
        self.config.validate()?;
        if trace.is_never_vulnerable() {
            return Err(SerrError::invalid_trace(
                "trace has AVF = 0; the component can never fail",
            ));
        }
        if rates.is_empty() {
            return Ok(Vec::new());
        }

        let t_compile = Instant::now();
        let compiled = CompiledTrace::compile(trace);
        if let Some(obs) = &self.obs {
            obs.record_stage("trace_compile", t_compile.elapsed().as_secs_f64() * 1e3);
        }
        let Some(c) = compiled.filter(|_| self.config.sampler == SamplerKind::BatchedInversion)
        else {
            // Per-point fallback: an uncompilable trace or a non-batched
            // sampler runs each point independently — the definition of
            // the per-point result, so equivalence holds trivially.
            return Ok(rates.iter().map(|&r| self.component_mttf(trace, r, freq)).collect());
        };

        let zero_rate = || SerrError::invalid_config("raw error rate is zero; MTTF is infinite");
        let hz = freq.hz();
        // Valid points carry their input index so per-point errors keep
        // their slots; the kernel only ever sees positive rates.
        let valid: Vec<(usize, f64)> = rates
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_zero())
            .map(|(i, r)| (i, r.per_second_value() / hz))
            .collect();
        let mut out: Vec<Result<MttfEstimate, SerrError>> =
            rates.iter().map(|_| Err(zero_rate())).collect();
        if valid.is_empty() {
            return Ok(out);
        }

        let samplers: Vec<BatchedInversionSampler> = valid
            .iter()
            .map(|&(_, lambda)| BatchedInversionSampler::new(&c, lambda, self.config.start_phase))
            .collect();
        let seed = self.config.seed;
        let t_run = Instant::now();
        let (chunks, truncated) = self.run_chunks_scaffold(
            || (SharedChunk::new(), PointScratch::new()),
            |(shared, point), chunk, n| {
                let n = n as usize;
                // The shared pass runs once per chunk on the exact stream
                // seed every independent run would use; any sampler may
                // drive it (λ is unread there).
                let t_shared = Instant::now();
                samplers[0].prepare_chunk(shared, chunk_seed(seed, chunk), n);
                let shared_ms = t_shared.elapsed().as_secs_f64() * 1e3;
                let t_point = Instant::now();
                let stats = samplers.iter().map(|s| s.finish_chunk(shared, point, n)).collect();
                Ok(MultiChunk { stats, shared_ms, point_ms: t_point.elapsed().as_secs_f64() * 1e3 })
            },
        )?;

        // Fold per point in ascending chunk order — the identical
        // reduction order an independent run uses, so the merge is
        // bit-identical too (the scaffold returns chunks sorted by index).
        let mut per_point: Vec<RunningStats> =
            (0..valid.len()).map(|_| RunningStats::new()).collect();
        let mut shared_ms = 0.0;
        let mut point_ms = 0.0;
        for (_, mc) in &chunks {
            for (p, s) in mc.stats.iter().enumerate() {
                per_point[p].merge(s);
            }
            shared_ms += mc.shared_ms;
            point_ms += mc.point_ms;
        }

        if let Some(obs) = &self.obs {
            let secs = t_run.elapsed().as_secs_f64();
            obs.record_stage("sweep_shared", shared_ms);
            obs.record_stage("sweep_point", point_ms);
            let metrics = obs.metrics();
            metrics.add("sweep.kernel_runs", 1);
            metrics.add("sweep.points", valid.len() as u64);
            metrics.add("sweep.rng_chunks", chunks.len() as u64);
            if valid.len() > 1 {
                // The trace was compiled once for all points instead of
                // once per point.
                metrics.add("sweep.trace_reuse", valid.len() as u64 - 1);
            }
            let trials: u64 = per_point.iter().map(RunningStats::count).sum();
            if secs > 0.0 {
                metrics.set_gauge("mc.samples_per_sec", trials as f64 / secs);
            }
        }

        for (&(i, _), stats) in valid.iter().zip(&per_point) {
            // One raw-error event (the failing one) per trial, like every
            // inversion sampler.
            let est = estimate_from_cycle_stats(
                stats,
                hz,
                stats.count(),
                truncated,
                SamplerKind::BatchedInversion,
            );
            if let Some(obs) = &self.obs {
                // Per-point telemetry is emitted from this main-thread
                // fold, keyed by input point index: byte-identical fields
                // at any thread count.
                obs.emit(
                    Event::new("sweep.point", i as u64)
                        .with("point", i)
                        .with("rate_per_s", rates[i].per_second_value())
                        .with("n", est.ttf_seconds.count)
                        .with("mean_s", est.ttf_seconds.mean)
                        .with("ci95_s", est.ttf_seconds.ci95),
                );
            }
            out[i] = Ok(est);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MonteCarloConfig, StartPhase};
    use serr_trace::IntervalTrace;

    fn rates_sweep() -> Vec<RawErrorRate> {
        (0..8).map(|i| RawErrorRate::per_year(2.0f64.powi(i) * 0.5)).collect()
    }

    fn assert_bit_identical(a: &MttfEstimate, b: &MttfEstimate) {
        assert_eq!(a.mttf.as_secs().to_bits(), b.mttf.as_secs().to_bits());
        assert_eq!(a.ttf_seconds.count, b.ttf_seconds.count);
        assert_eq!(a.ttf_seconds.mean.to_bits(), b.ttf_seconds.mean.to_bits());
        assert_eq!(a.ttf_seconds.ci95.to_bits(), b.ttf_seconds.ci95.to_bits());
        assert_eq!(a.ttf_seconds.std_dev.to_bits(), b.ttf_seconds.std_dev.to_bits());
        assert_eq!(a.ttf_seconds.min.to_bits(), b.ttf_seconds.min.to_bits());
        assert_eq!(a.ttf_seconds.max.to_bits(), b.ttf_seconds.max.to_bits());
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.sampler, b.sampler);
    }

    #[test]
    fn multi_matches_independent_runs_bit_for_bit() {
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let rates = rates_sweep();
        for start_phase in [StartPhase::WorkloadStart, StartPhase::Stationary] {
            for threads in [1usize, 4] {
                let cfg =
                    MonteCarloConfig { trials: 5_000, threads, start_phase, ..Default::default() };
                let mc = MonteCarlo::new(cfg);
                let multi = mc.component_mttf_multi(&trace, &rates, Frequency::base()).unwrap();
                assert_eq!(multi.len(), rates.len());
                for (r, m) in rates.iter().zip(&multi) {
                    let solo = mc.component_mttf(&trace, *r, Frequency::base()).unwrap();
                    let m = m.as_ref().expect("valid point");
                    assert_bit_identical(m, &solo);
                    assert_eq!(m.sampler, SamplerKind::BatchedInversion);
                }
            }
        }
    }

    #[test]
    fn multi_is_thread_count_invariant() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rates = rates_sweep();
        let one = MonteCarloConfig { trials: 5_000, threads: 1, ..Default::default() };
        let eight = MonteCarloConfig { threads: 8, ..one };
        let a = MonteCarlo::new(one).component_mttf_multi(&trace, &rates, Frequency::base());
        let b = MonteCarlo::new(eight).component_mttf_multi(&trace, &rates, Frequency::base());
        let (a, b) = (a.unwrap(), b.unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert_bit_identical(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
    }

    #[test]
    fn zero_rate_point_fails_alone() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rates =
            vec![RawErrorRate::per_year(1.0), RawErrorRate::ZERO, RawErrorRate::per_year(4.0)];
        let mc = MonteCarlo::new(MonteCarloConfig { trials: 3_000, ..Default::default() });
        let multi = mc.component_mttf_multi(&trace, &rates, Frequency::base()).unwrap();
        assert!(multi[0].is_ok());
        assert!(matches!(multi[1], Err(SerrError::InvalidConfig { .. })));
        assert!(multi[2].is_ok());
        let solo = mc.component_mttf(&trace, rates[2], Frequency::base()).unwrap();
        assert_bit_identical(multi[2].as_ref().unwrap(), &solo);
    }

    #[test]
    fn empty_sweep_and_dead_trace_edge_cases() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let mc = MonteCarlo::new(MonteCarloConfig { trials: 2_000, ..Default::default() });
        assert!(mc.component_mttf_multi(&trace, &[], Frequency::base()).unwrap().is_empty());
        let dead = IntervalTrace::constant(10, 0.0).unwrap();
        assert!(matches!(
            mc.component_mttf_multi(&dead, &rates_sweep(), Frequency::base()),
            Err(SerrError::InvalidTrace { .. })
        ));
    }

    #[test]
    fn non_batched_samplers_fall_back_to_independent_runs() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rates: Vec<RawErrorRate> =
            (0..3).map(|i| RawErrorRate::per_year(2.0 + f64::from(i))).collect();
        for sampler in [SamplerKind::EventLoop, SamplerKind::Inversion] {
            let cfg = MonteCarloConfig { trials: 2_000, sampler, ..Default::default() };
            let mc = MonteCarlo::new(cfg);
            let multi = mc.component_mttf_multi(&trace, &rates, Frequency::base()).unwrap();
            for (r, m) in rates.iter().zip(&multi) {
                let solo = mc.component_mttf(&trace, *r, Frequency::base()).unwrap();
                assert_bit_identical(m.as_ref().unwrap(), &solo);
                assert_eq!(m.as_ref().unwrap().sampler, sampler);
            }
        }
    }

    #[test]
    fn injected_deadline_cut_truncates_every_point_identically() {
        use serr_inject::{FaultKind, FaultPlan};
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rates = rates_sweep();
        let base = MonteCarloConfig { trials: 8_192, threads: 1, ..Default::default() };
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, FaultKind::DeadlineExhaust))
            .find(|p| p.deadline_cut_chunk() == Some(3))
            .expect("some seed cuts at chunk 3");
        let cfg = MonteCarloConfig { chaos: Some(plan), ..base };
        let mc = MonteCarlo::new(cfg);
        let multi = mc.component_mttf_multi(&trace, &rates, Frequency::base()).unwrap();
        for (r, m) in rates.iter().zip(&multi) {
            let m = m.as_ref().unwrap();
            assert!(m.truncated);
            assert_eq!(m.ttf_seconds.count, 3 * 1024);
            // The truncated multi estimate still matches the truncated
            // independent run under the same injected cut.
            let solo = mc.component_mttf(&trace, *r, Frequency::base()).unwrap();
            assert_bit_identical(m, &solo);
        }
    }

    #[test]
    fn sweep_telemetry_is_deterministic_and_keyed_by_point() {
        use serr_obs::Obs;
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rates = rates_sweep();
        let events_at = |threads: usize| {
            let cfg = MonteCarloConfig { trials: 4_096, threads, ..Default::default() };
            let (obs, sink) = Obs::memory();
            MonteCarlo::new(cfg)
                .with_observer(obs.clone())
                .component_mttf_multi(&trace, &rates, Frequency::base())
                .unwrap();
            let snap = obs.metrics().snapshot();
            assert_eq!(snap.counters["sweep.kernel_runs"], 1);
            assert_eq!(snap.counters["sweep.points"], rates.len() as u64);
            assert_eq!(snap.counters["sweep.rng_chunks"], 4);
            assert_eq!(snap.counters["sweep.trace_reuse"], rates.len() as u64 - 1);
            assert_eq!(snap.histograms["stage.sweep_shared_ms"].count(), 1);
            assert_eq!(snap.histograms["stage.sweep_point_ms"].count(), 1);
            let mut events = sink.events_of("sweep.point");
            events.sort_by_key(|e| e.seq);
            events
        };
        let one = events_at(1);
        let eight = events_at(8);
        assert_eq!(one.len(), rates.len());
        let one_fields: Vec<_> = one.iter().map(|e| (e.seq, e.fields.clone())).collect();
        let eight_fields: Vec<_> = eight.iter().map(|e| (e.seq, e.fields.clone())).collect();
        assert_eq!(one_fields, eight_fields, "sweep.point events must be thread-invariant");
    }
}
