//! The batched structure-of-arrays inversion sampler: a whole chunk of
//! trials is the unit of work.
//!
//! # Why batching is the next 10×
//!
//! The scalar inversion sampler ([`crate::inversion`]) already made a
//! single trial O(1): one Exp draw, two logs, one bucketed inverse-index
//! probe. What remains is pure per-trial overhead — a `SmallRng` state
//! update and a branchy `ln`/`ln_1p` per draw, a prefix-table probe per
//! trial — none of which the compiler can vectorize across trials because
//! the scalar loop serializes through the RNG state. This module
//! restructures the work so every stage is a straight-line array pass over
//! structure-of-arrays buffers:
//!
//! 1. **Counter RNG**: the chunk's entire word stream is generated up
//!    front into a flat `u64` buffer by a SplitMix64 finalizer over
//!    `(stream seed, word index)` — no sequential state, so the pass
//!    vectorizes and any word is addressable by index.
//! 2. **Branchless transforms**: uniforms come from an exponent-splice bit
//!    trick (exact on the `2⁻⁵²` grid, so `1 − u` is *exact* and the log
//!    inputs never leave `[2⁻⁵², 1]` — no NaN/∞ guards needed anywhere);
//!    the Exp and geometric draws are two [`serr_numeric::vecmath`] log
//!    passes over the `exp_draws` and `residual_masses` buffers, with the
//!    geometric multiply/floor (the period-skip count) fused into the
//!    final fold.
//! 3. **Batched inversion**: all final-window phases resolve through
//!    [`CompiledTrace::phase_at_cumulative_batch`] — a branchless
//!    select-chain whose prefix table lives in registers across the whole
//!    chunk instead of being re-probed per trial.
//! 4. **One fold**: each chunk's statistics come from a single compensated
//!    pass fused into the kernel's final TTF fold
//!    ([`serr_numeric::stats::RunningStats::from_mapped_slice`]) — the
//!    chunk buffer is traversed once more in total, not once for the TTFs
//!    and again for the statistics.
//!
//! # Distribution exactness
//!
//! For a trial starting at phase 0 the TTF decomposes as `K·L + ψ(M)`
//! where `K ~ Geometric(1 − e^{−λW})` counts whole periods survived and
//! `M` is an independent truncated-`Exp(λ)` mass on `[0, W)`. The batched
//! kernel samples `K = ⌊E/(λW)⌋` from one `Exp(1)` draw `E` (exactly
//! geometric, since `P(⌊E/g⌋ = j) = e^{−jg}(1 − e^{−g})`) and `M` from an
//! independent uniform — the same joint law the scalar sampler's
//! three-part split produces, so the two agree in distribution at any λL,
//! which `tests/sampler_equivalence.rs` pins by KS. The λW > 700 underflow
//! guard of the scalar path is *structural* here: `E ≤ −ln 2⁻⁵² ≈ 36.04`,
//! so a huge `λW` makes `⌊E/(λW)⌋` zero with no branch at all. Stationary
//! starts draw the phase, test the first partial window with the same
//! `Exp(1)` draw (`E < λ·tail₀` hits with exactly `p₀ = 1 − e^{−λ·tail₀}`,
//! and `E/λ` *is* the conditional truncated mass — no second draw, no
//! cancellation), and fall back to fresh geometric/mass draws on a miss.
//!
//! # RNG schedule contract
//!
//! The word stream is **versioned**
//! ([`BATCHED_RNG_SCHEDULE_VERSION`]): trial `i` of an `n`-trial chunk
//! reads words planar-by-variable (uniform A at index `i`, uniform B at
//! `n + i`; stationary starts prepend the phase plane and append the
//! geometric plane). Changing the layout, the finalizer, or the
//! bit-to-uniform mapping is a schedule bump that must re-pin
//! `sampler_equivalence`. The draws differ from the scalar inversion
//! sampler's `SmallRng` stream by construction — the batched sampler is a
//! *new* schedule, not a reordering of the old one — but the per-chunk
//! `(seed, chunk)` derivation and ascending-chunk fold are unchanged, so
//! estimates remain bit-identical at any `SERR_THREADS`.
//!
//! # Shared streams across a sweep (common random numbers)
//!
//! Every word plane except the final inversion is λ-independent: the
//! `Exp(1)` draws, the residual-mass uniforms, and (stationary) the phase
//! plane with its `V(φ)` pricing depend only on the trace and
//! `(stream_seed, n)`. The chunk kernel is therefore split into a
//! [`BatchedInversionSampler::prepare_chunk`] pass that materializes those
//! planes once and a [`BatchedInversionSampler::finish_chunk`] pass that
//! applies one design point's λ-dependent scale, tiered log, inversion,
//! and fold. [`BatchedInversionSampler::sample_chunk_with_stats`] *is*
//! prepare followed by finish, so a sweep that prepares once and finishes
//! per λ (see `serr_mc::sweep`) produces every point bit-identical to an
//! independent run — the same `(seed, chunk)` word schedule with the
//! shared draws consumed identically — while paying the RNG and log
//! passes once instead of once per point.

use serr_numeric::stats::RunningStats;
use serr_numeric::vecmath::{ln_in_place, ln_one_minus_scaled_in_place};
use serr_trace::{CompiledTrace, VulnerabilityTrace};

use crate::config::StartPhase;

/// Version of the batched sampler's counter-RNG word schedule (layout,
/// finalizer, and bit-to-uniform mapping). Bump on any change that moves a
/// draw to a different word or changes how a word becomes a uniform, and
/// re-pin the `sampler_equivalence` bit-identity tests.
pub const BATCHED_RNG_SCHEDULE_VERSION: u32 = 1;

/// Counter-based word derivation: a SplitMix64 finalizer over
/// `(stream_seed, index)` — the same construction the engine uses for
/// per-chunk seeds, one level down. Pure function of its arguments, so
/// the whole word buffer can be filled by a vectorizable pass and any
/// trial's draws are addressable without replaying a sequential stream.
#[inline]
#[must_use]
pub fn rng_word(stream_seed: u64, index: u64) -> u64 {
    let mut z = stream_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a random word onto the uniform grid `{0, 2⁻⁵², …, 1 − 2⁻⁵²}` by
/// splicing the top 52 bits into an exponent-0 mantissa: exact, branchless,
/// and — because every value is a multiple of `2⁻⁵²` in `[0, 1 − 2⁻⁵²]` —
/// `1 − u` is *exact* in `f64` and lies in `[2⁻⁵², 1]`, the domain where
/// the batch log passes need no NaN/∞ guards.
#[inline]
#[must_use]
pub fn uniform_from_word(word: u64) -> f64 {
    f64::from_bits((1023u64 << 52) | (word >> 12)) - 1.0
}

/// `1 − uniform_from_word(word)`, computed directly as
/// `2 − [1, 2)-splice` — exactly the same value (both subtractions are
/// exact on this grid), one operation shorter in the hot pass.
#[inline]
#[must_use]
pub fn one_minus_uniform_from_word(word: u64) -> f64 {
    2.0 - f64::from_bits((1023u64 << 52) | (word >> 12))
}

/// λ-independent shared buffers for one chunk: the counter-RNG planes and
/// vectorized passes that depend only on the trace, the start-phase
/// convention, and `(stream_seed, n)` — never on the design point's λ.
/// Prepared once per chunk by [`BatchedInversionSampler::prepare_chunk`], a
/// `SharedChunk` serves any number of per-λ
/// [`BatchedInversionSampler::finish_chunk`] calls — the common-random-
/// numbers axis the sweep kernel (`serr_mc::sweep`) amortizes across every
/// design point of a sweep.
#[derive(Debug, Default)]
pub struct SharedChunk {
    /// `ln(1 − u) = −E` per trial: the `Exp(1)` plane after its batch log.
    /// λ-independent — the per-point `E/(λW)` scaling happens in the
    /// finish fold.
    neg_exp: Vec<f64>,
    /// Raw uniform residual-mass plane, **unscaled** (workload-start
    /// chunks only): the λ-dependent `· (1 − e^{−λW})` multiply and the
    /// tiered log pass both belong to the finish pass (the log tier is
    /// chosen from the batch maximum, which moves with λ). Each point
    /// applies them to identical operands, so per-point results stay
    /// bit-identical to an unshared run.
    mass_uniforms: Vec<f64>,
    /// Per-trial initial phases (stationary starts only).
    phases: Vec<f64>,
    /// `V(φ)` per trial (stationary starts only).
    v_phis: Vec<f64>,
    /// Staged miss-plane words (stationary starts only), converted to
    /// uniforms lazily per point — which trials take the miss branch
    /// depends on λ.
    words: Vec<u64>,
}

impl SharedChunk {
    /// Fresh, empty shared buffers. They size themselves on first prepare.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-point scratch: the buffers one design point's finish pass
/// overwrites. A single instance can serve many points serially — each
/// finish rewrites it completely.
#[derive(Debug, Default)]
pub struct PointScratch {
    /// Truncated-Exp mass in the final window, overwritten in place by the
    /// batched inverse lookup with the failing phase `ψ`, and again by the
    /// final fold with the assembled time to failure in cycles — the same
    /// memory serves as mass, phase, and TTF buffer in turn.
    residual_masses: Vec<f64>,
    /// Additive TTF base per trial (stationary starts only).
    bases: Vec<f64>,
}

impl PointScratch {
    /// Fresh, empty per-point scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The TTF buffer (in cycles) the most recent finish pass produced.
    #[must_use]
    pub fn ttfs(&self) -> &[f64] {
        &self.residual_masses
    }
}

/// Reusable per-worker scratch for [`BatchedInversionSampler::sample_chunk`]:
/// the shared planes plus one point's finish buffers. The SoA buffers grow
/// to the chunk size once and are reused across every chunk the worker
/// claims, so the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct BatchScratch {
    shared: SharedChunk,
    point: PointScratch,
}

impl BatchScratch {
    /// Fresh, empty scratch. Buffers size themselves on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The chunk-at-a-time inversion sampler. Immutable after construction
/// (all λ-dependent constants are precomputed), so one instance is shared
/// by every worker; each worker brings its own [`BatchScratch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchedInversionSampler<'a> {
    trace: &'a CompiledTrace,
    start_phase: StartPhase,
    lambda_cycle: f64,
    /// Period length in cycles, as `f64`.
    period: f64,
    /// Total vulnerability mass `W` of one period.
    total: f64,
    /// Largest mass the inverse lookup may see (`W.next_down()`), absorbing
    /// any rounding-up in the draws — same cap as the scalar sampler.
    mass_cap: f64,
    /// `−1/λ`: one multiply turns `ln(1 − y)` into a truncated-Exp mass.
    neg_inv_lambda: f64,
    /// `−1/(λW)`: one multiply turns `ln(1 − u) = −E` into `E/(λW)`.
    /// Zero when `λW` overflows (then every skip count is 0, which is also
    /// what the mathematics says).
    neg_inv_lambda_w: f64,
    /// `1 − e^{−λW}`: scales a uniform onto the truncated-Exp mass range.
    one_minus_q: f64,
}

impl<'a> BatchedInversionSampler<'a> {
    /// Builds a sampler for `trace` under per-cycle rate `lambda_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_cycle` is not positive or the trace has AVF = 0 —
    /// the same contract as the scalar inversion sampler (callers validate
    /// these up front).
    #[must_use]
    pub fn new(trace: &'a CompiledTrace, lambda_cycle: f64, start_phase: StartPhase) -> Self {
        assert!(lambda_cycle > 0.0, "per-cycle rate must be positive");
        let total = trace.total_mass();
        assert!(total > 0.0, "AVF = 0 trace cannot fail");
        let lambda_w = lambda_cycle * total;
        BatchedInversionSampler {
            trace,
            start_phase,
            lambda_cycle,
            period: trace.period_cycles() as f64,
            total,
            mass_cap: total.next_down(),
            neg_inv_lambda: -1.0 / lambda_cycle,
            neg_inv_lambda_w: if lambda_w.is_finite() { -1.0 / lambda_w } else { 0.0 },
            one_minus_q: serr_numeric::special::one_minus_exp_neg(lambda_w),
        }
    }

    /// Samples `n` times to failure (in cycles) for the chunk stream
    /// `stream_seed`, returning a borrow of the scratch TTF buffer. Every
    /// trial consumes a fixed set of counter-RNG words (see the module
    /// docs), so the result is a pure function of `(stream_seed, n)` —
    /// never of thread count, previous chunks, or scratch reuse.
    pub fn sample_chunk<'s>(
        &self,
        scratch: &'s mut BatchScratch,
        stream_seed: u64,
        n: usize,
    ) -> &'s [f64] {
        self.sample_chunk_with_stats(scratch, stream_seed, n).0
    }

    /// [`Self::sample_chunk`] plus the chunk's statistics — the compensated
    /// fold the engine feeds into its per-chunk merge. The statistics pass
    /// is fused into each kernel's final TTF fold
    /// ([`RunningStats::from_mapped_slice`]), so it costs no extra
    /// traversal of the chunk buffers.
    pub fn sample_chunk_with_stats<'s>(
        &self,
        scratch: &'s mut BatchScratch,
        stream_seed: u64,
        n: usize,
    ) -> (&'s [f64], RunningStats) {
        // Prepare + finish *is* the single-point path: the sweep kernel
        // runs the same two passes with the prepare amortized across
        // points, so shared-stream sweep results are bit-identical to a
        // solo run by construction.
        self.prepare_chunk(&mut scratch.shared, stream_seed, n);
        let stats = self.finish_chunk(&scratch.shared, &mut scratch.point, n);
        (&scratch.point.residual_masses, stats)
    }

    /// Prepares the λ-independent planes of one chunk: counter-RNG words,
    /// exponent-splice uniforms, the `Exp(1)` batch log, and (stationary
    /// starts) the phase plane with its batched `V(φ)` pricing. Reads only
    /// the trace, the start-phase convention, and `(stream_seed, n)` —
    /// never λ — so one prepared chunk serves every design point of a
    /// sweep over the same trace.
    pub fn prepare_chunk(&self, shared: &mut SharedChunk, stream_seed: u64, n: usize) {
        match self.start_phase {
            StartPhase::WorkloadStart => self.prepare_workload_start(shared, stream_seed, n),
            StartPhase::Stationary => self.prepare_stationary(shared, stream_seed, n),
        }
    }

    /// Finishes one design point over a prepared chunk: the λ-dependent
    /// mass scale and tiered log pass, the batched inverse lookup, and the
    /// TTF/statistics fold. Consumes the shared draws with the same
    /// operands in the same operation order as the fused single-point
    /// kernel, so the result is bit-identical to
    /// [`Self::sample_chunk_with_stats`] at the same `(stream_seed, n)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `shared` was prepared for exactly `n` trials
    /// (the start-phase convention is the sampler's own, so it cannot
    /// mismatch).
    pub fn finish_chunk(
        &self,
        shared: &SharedChunk,
        point: &mut PointScratch,
        n: usize,
    ) -> RunningStats {
        debug_assert_eq!(shared.neg_exp.len(), n, "shared chunk prepared for a different n");
        match self.start_phase {
            StartPhase::WorkloadStart => self.finish_workload_start(shared, point),
            StartPhase::Stationary => self.finish_stationary(shared, point, n),
        }
    }

    /// Workload-start shared pass (`φ = 0`): two words per trial, zero
    /// branches per element. Schedule v1 layout: uniform A (Exp draw) at
    /// word `i`, uniform B (residual mass) at word `n + i`. The counter
    /// words are generated inline in each plane's pass — being pure
    /// functions of `(stream_seed, index)` they need no staging buffer,
    /// and fusing the generation keeps each pass a single read-free
    /// vector loop.
    fn prepare_workload_start(&self, shared: &mut SharedChunk, stream_seed: u64, n: usize) {
        let s = shared;
        let n64 = n as u64;

        // E ~ Exp(1) via exact 1 − u, one batch log. (Two passes on
        // purpose: fusing the scalar log into the generator `extend` was
        // measured slower — the per-element reserve check blocks the SIMD
        // lowering that the slice pass gets.) The buffer holds
        // ln(1 − u) = −E afterwards; the sign folds into the geometric
        // multiplier in the finish fold.
        s.neg_exp.clear();
        s.neg_exp.extend((0..n64).map(|i| one_minus_uniform_from_word(rng_word(stream_seed, i))));
        ln_in_place(&mut s.neg_exp);

        // Plane B stays a raw uniform here: its `· (1 − e^{−λW})` scale is
        // λ-dependent, so it belongs to the finish pass.
        s.mass_uniforms.clear();
        s.mass_uniforms.extend((n64..2 * n64).map(|i| uniform_from_word(rng_word(stream_seed, i))));
    }

    /// Workload-start finish: the λ-dependent tail of the fused kernel.
    fn finish_workload_start(
        &self,
        shared: &SharedChunk,
        point: &mut PointScratch,
    ) -> RunningStats {
        let p = point;

        // Truncated-Exp(λ) mass on [0, W): m = −ln(1 − u·p)/λ, capped
        // below W for the inverse lookup like the scalar sampler — the
        // scale and cap are fused into the log pass. The multiply reads
        // the identical uniform the fused kernel generated inline, so
        // sharing the plane across points changes no bits.
        p.residual_masses.clear();
        p.residual_masses.extend(shared.mass_uniforms.iter().map(|&u| u * self.one_minus_q));
        ln_one_minus_scaled_in_place(&mut p.residual_masses, self.neg_inv_lambda, self.mass_cap);

        // All final-window phases in one batched inverse lookup.
        self.trace.phase_at_cumulative_batch(&mut p.residual_masses);

        // Fold TTF = K·L + ψ in place — K = ⌊E/(λW)⌋ whole periods
        // survived (λW > 700 needs no guard: E ≤ 36.04 forces K = 0
        // through the arithmetic itself), and the mass buffer becomes the
        // TTF buffer, sparing a third array's worth of traffic. `mul_add`
        // is exactly rounded, so this is bit-deterministic on every
        // target (see the schedule contract). The chunk's statistics fold
        // rides the same traversal.
        RunningStats::from_mapped_slice(&mut p.residual_masses, |i, psi| {
            (shared.neg_exp[i] * self.neg_inv_lambda_w).floor().mul_add(self.period, psi)
        })
    }

    /// Stationary shared pass: four words per trial. Schedule v1 layout:
    /// phase at word `i`, uniform A (Exp draw / first-window test) at
    /// `n + i`, uniform B (residual mass) at `2n + i`, uniform C
    /// (miss-branch geometric) at `3n + i`. The miss planes (B, C) are
    /// staged as raw words — which trials consume them depends on λ — and
    /// the batched planes (phase, Exp) generate their words inline.
    fn prepare_stationary(&self, shared: &mut SharedChunk, stream_seed: u64, n: usize) {
        let s = shared;
        let n64 = n as u64;
        fill_words(&mut s.words, stream_seed, 2 * n, 4 * n);

        // Initial phases and their cumulative masses V(φ).
        s.phases.clear();
        s.phases
            .extend((0..n64).map(|i| uniform_from_word(rng_word(stream_seed, i)) * self.period));
        s.v_phis.clear();
        s.v_phis.resize(n, 0.0);
        self.trace.cumulative_at_batch(&s.phases, &mut s.v_phis);

        // Exp(1) draws (buffer holds −E after the log pass).
        s.neg_exp.clear();
        s.neg_exp
            .extend((n64..2 * n64).map(|i| one_minus_uniform_from_word(rng_word(stream_seed, i))));
        ln_in_place(&mut s.neg_exp);
    }

    /// Stationary finish: the hit/miss split is a per-element branch —
    /// stationary starts are the diagnostic path, not the throughput
    /// path — but the phase pricing (shared) and the inverse lookup still
    /// run batched.
    fn finish_stationary(
        &self,
        shared: &SharedChunk,
        point: &mut PointScratch,
        n: usize,
    ) -> RunningStats {
        let s = shared;
        let p = point;

        // Resolve each trial to (mass to invert, additive base).
        // A first-window hit (E < λ·tail₀, probability exactly p₀) reuses
        // E/λ as the conditional truncated mass beyond V(φ) — by
        // memorylessness that *is* the right law, with no cancellation
        // since E < λ·tail₀ keeps the sum below W. A miss draws the
        // geometric skip and an independent final-window mass, exactly as
        // the scalar sampler's parts 2 and 3.
        p.residual_masses.clear();
        p.bases.clear();
        for i in 0..n {
            let phi = s.phases[i];
            let v_phi = s.v_phis[i];
            let tail0 = (self.total - v_phi).max(0.0);
            let e = -s.neg_exp[i];
            if e < self.lambda_cycle * tail0 {
                let m = (v_phi + e / self.lambda_cycle).min(self.mass_cap);
                p.residual_masses.push(m);
                // ψ ≥ φ up to lookup rounding; the final clamp restores ≥ 0.
                p.bases.push(-phi);
            } else {
                let u_c = uniform_from_word(s.words[n + i]);
                // Same λW > 700 underflow regime as the scalar sampler:
                // neg_inv_lambda_w ≈ 0 collapses the skip count to 0.
                let k = ((1.0 - u_c).ln() * self.neg_inv_lambda_w).floor();
                let y = uniform_from_word(s.words[i]) * self.one_minus_q;
                let m = ((-y).ln_1p() * self.neg_inv_lambda).min(self.mass_cap);
                p.residual_masses.push(m);
                p.bases.push((self.period - phi) + k * self.period);
            }
        }

        // Batched inverse lookup, then TTF = base + ψ folded in place,
        // clamped at zero for the hit branch's φ subtraction — with the
        // chunk's statistics fold riding the same traversal.
        self.trace.phase_at_cumulative_batch(&mut p.residual_masses);
        RunningStats::from_mapped_slice(&mut p.residual_masses, |i, psi| {
            (p.bases[i] + psi).max(0.0)
        })
    }
}

/// Fills `words` with the counter-RNG words at stream indices
/// `start..end` (so `words[j] = rng_word(stream_seed, start + j)`) — a
/// branchless, stateless pass.
fn fill_words(words: &mut Vec<u64>, stream_seed: u64, start: usize, end: usize) {
    words.clear();
    words.extend((start as u64..end as u64).map(|i| rng_word(stream_seed, i)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn compiled(trace: &IntervalTrace) -> CompiledTrace {
        CompiledTrace::compile(trace).expect("test traces compile")
    }

    fn run_stats(
        trace: &IntervalTrace,
        lambda: f64,
        start: StartPhase,
        chunks: u64,
        chunk_len: usize,
    ) -> RunningStats {
        let c = compiled(trace);
        let sampler = BatchedInversionSampler::new(&c, lambda, start);
        let mut scratch = BatchScratch::new();
        let mut stats = RunningStats::new();
        for chunk in 0..chunks {
            let (_, chunk_stats) =
                sampler.sample_chunk_with_stats(&mut scratch, 0xBA7C_0000 + chunk, chunk_len);
            stats.merge(&chunk_stats);
        }
        stats
    }

    #[test]
    fn schedule_version_is_pinned() {
        // A schedule bump must be deliberate: it changes every sampled
        // stream, so sampler_equivalence's bit-identity pins move with it.
        assert_eq!(BATCHED_RNG_SCHEDULE_VERSION, 1);
    }

    #[test]
    fn uniforms_sit_on_the_exact_grid() {
        assert_eq!(uniform_from_word(0), 0.0);
        assert_eq!(uniform_from_word(u64::MAX), 1.0 - 2.0f64.powi(-52));
        // 1 − u is exact across the grid: both extremes and a mid word.
        for w in [0u64, 1 << 12, u64::MAX / 2, u64::MAX] {
            let u = uniform_from_word(w);
            assert!((0.0..1.0).contains(&u));
            let omu = 1.0 - u;
            assert!(omu >= 2.0f64.powi(-52) && omu <= 1.0);
            // Exactness: adding back recovers u bit-for-bit.
            assert_eq!(1.0 - omu, u);
        }
    }

    #[test]
    fn counter_words_are_stateless_and_seed_separated() {
        let a: Vec<u64> = (0..32).map(|i| rng_word(7, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| rng_word(7, i)).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..32).map(|i| rng_word(8, i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn fully_vulnerable_matches_exponential_mean() {
        let trace = IntervalTrace::constant(100, 1.0).unwrap();
        let lambda = 0.02;
        let stats = run_stats(&trace, lambda, StartPhase::WorkloadStart, 50, 1024);
        let want = 1.0 / lambda;
        assert!(
            (stats.mean() - want).abs() < 4.0 * stats.ci95_half_width().max(1e-9),
            "mean {} want {want}",
            stats.mean()
        );
    }

    #[test]
    fn matches_renewal_closed_form_busy_idle() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let lambda = 0.01; // λL = 1.0
        let stats = run_stats(&trace, lambda, StartPhase::WorkloadStart, 200, 1024);
        let want = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.01, "MC {} vs renewal {want}: err {err}", stats.mean());
    }

    #[test]
    fn matches_renewal_with_fractional_vulnerability() {
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let lambda = 0.05;
        let stats = run_stats(&trace, lambda, StartPhase::WorkloadStart, 200, 1024);
        let want = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.015, "MC {} vs renewal {want}: err {err}", stats.mean());
    }

    #[test]
    fn tiny_lambda_l_matches_avf_formula() {
        // λL = 1e-9: skip counts near 1e9 periods; magnitudes must not
        // cancel anywhere in the SoA passes.
        let trace = IntervalTrace::busy_idle(25, 75).unwrap();
        let lambda = 1e-11;
        let stats = run_stats(&trace, lambda, StartPhase::WorkloadStart, 20, 1024);
        let want = 1.0 / (lambda * 0.25);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.03, "MC {} vs AVF {want}: err {err}", stats.mean());
    }

    #[test]
    fn huge_lambda_l_is_stable_with_no_explicit_guard() {
        // λL = 2000: e^{−λW} underflows to 0. The scalar sampler needs an
        // explicit λW > 700 branch; here E ≤ 36.04 forces every skip to 0
        // structurally. All TTFs must stay finite and land in the first
        // busy window.
        let trace = IntervalTrace::busy_idle(1000, 1000).unwrap();
        let lambda = 1.0;
        let c = compiled(&trace);
        let sampler = BatchedInversionSampler::new(&c, lambda, StartPhase::WorkloadStart);
        let mut scratch = BatchScratch::new();
        let ttfs = sampler.sample_chunk(&mut scratch, 99, 20_000);
        let mut mean = 0.0;
        for &t in ttfs {
            assert!(t.is_finite() && t >= 0.0, "non-finite TTF {t}");
            assert!(t < 1000.0, "λW = 2000 trial escaped the first busy window: {t}");
            mean += t;
        }
        mean /= ttfs.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn extreme_words_produce_finite_draws() {
        // The word → uniform → log pipeline at both grid extremes: u = 0
        // gives E = 0 (immediate-failure tail) and u = 1 − 2⁻⁵² gives the
        // largest representable draw E ≈ 36.04; neither may produce NaN/∞
        // masses or phases. Exercised through a real chunk plus directly.
        let e_max = -(2.0f64.powi(-52)).ln();
        assert!((e_max - 36.043_653_389_117_154).abs() < 1e-12);
        let trace = IntervalTrace::busy_idle(1, 999).unwrap();
        let c = compiled(&trace);
        for lambda in [1e-12, 1e-3, 10.0] {
            let sampler = BatchedInversionSampler::new(&c, lambda, StartPhase::WorkloadStart);
            let mut scratch = BatchScratch::new();
            for seed in 0..8 {
                for &t in sampler.sample_chunk(&mut scratch, seed, 512) {
                    assert!(t.is_finite() && t >= 0.0, "λ={lambda}: bad TTF {t}");
                }
            }
        }
    }

    #[test]
    fn stationary_matches_phase_averaged_renewal() {
        let trace = IntervalTrace::busy_idle(500, 500).unwrap();
        let lambda = 0.007;
        let stats = run_stats(&trace, lambda, StartPhase::Stationary, 100, 1024);
        use std::sync::Arc;
        let arc: Arc<dyn VulnerabilityTrace> = Arc::new(trace);
        let shifts = 1000u64;
        let want: f64 = (0..shifts)
            .map(|i| {
                let t = serr_trace::ShiftedTrace::new(arc.clone(), i);
                serr_analytic::renewal::renewal_mttf_cycles(&t, lambda)
            })
            .sum::<f64>()
            / shifts as f64;
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.02, "MC {} vs shift-averaged renewal {want}: {err}", stats.mean());
    }

    #[test]
    fn stationary_ttfs_are_nonnegative_and_finite() {
        let trace = IntervalTrace::from_levels(&[0.0, 1.0, 0.0, 0.5]).unwrap();
        let c = compiled(&trace);
        let sampler = BatchedInversionSampler::new(&c, 0.3, StartPhase::Stationary);
        let mut scratch = BatchScratch::new();
        for seed in 0..16 {
            for &t in sampler.sample_chunk(&mut scratch, seed, 512) {
                assert!(t.is_finite() && t >= 0.0, "bad stationary TTF {t}");
            }
        }
    }

    #[test]
    fn chunks_are_deterministic_and_scratch_reuse_is_invisible() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let c = compiled(&trace);
        let sampler = BatchedInversionSampler::new(&c, 0.01, StartPhase::WorkloadStart);
        // Fresh scratch per call vs one reused scratch (including a
        // different-length chunk in between): bit-identical streams.
        let mut reused = BatchScratch::new();
        let first: Vec<f64> = sampler.sample_chunk(&mut reused, 42, 1024).to_vec();
        let _ = sampler.sample_chunk(&mut reused, 43, 100);
        let again: Vec<f64> = sampler.sample_chunk(&mut reused, 42, 1024).to_vec();
        assert_eq!(first, again, "scratch reuse changed the stream");
        let mut fresh = BatchScratch::new();
        assert_eq!(first, sampler.sample_chunk(&mut fresh, 42, 1024), "scratch state leaked");
        // Distinct stream seeds decorrelate.
        assert_ne!(first, sampler.sample_chunk(&mut fresh, 77, 1024));
    }

    #[test]
    fn shared_prepare_plus_finish_is_bit_identical_to_the_fused_kernel() {
        // The sweep-kernel contract: one prepared chunk, finished per λ,
        // must reproduce each λ's fused single-point chunk bit for bit —
        // in both start-phase conventions, across several chunk seeds.
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let c = compiled(&trace);
        let lambdas = [1e-9, 3e-4, 0.02, 0.7];
        for start in [StartPhase::WorkloadStart, StartPhase::Stationary] {
            let samplers: Vec<_> =
                lambdas.iter().map(|&l| BatchedInversionSampler::new(&c, l, start)).collect();
            let mut shared = SharedChunk::new();
            let mut point = PointScratch::new();
            for seed in [3u64, 0xBA7C_0001, u64::MAX - 5] {
                // Shared pass once (any sampler may run it: λ is unread).
                samplers[0].prepare_chunk(&mut shared, seed, 1024);
                for sampler in &samplers {
                    let stats = sampler.finish_chunk(&shared, &mut point, 1024);
                    let shared_ttfs = point.ttfs().to_vec();
                    let mut solo = BatchScratch::new();
                    let (solo_ttfs, solo_stats) =
                        sampler.sample_chunk_with_stats(&mut solo, seed, 1024);
                    assert_eq!(shared_ttfs, solo_ttfs, "{start:?}: TTF stream diverged");
                    assert_eq!(stats.mean().to_bits(), solo_stats.mean().to_bits());
                    assert_eq!(stats.min().to_bits(), solo_stats.min().to_bits());
                    assert_eq!(stats.max().to_bits(), solo_stats.max().to_bits());
                    assert_eq!(
                        stats.ci95_half_width().to_bits(),
                        solo_stats.ci95_half_width().to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn point_scratch_reuse_across_points_is_invisible() {
        // One PointScratch serving many λs serially (the sweep kernel's
        // steady state) must leak nothing between points.
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let c = compiled(&trace);
        let a = BatchedInversionSampler::new(&c, 0.01, StartPhase::WorkloadStart);
        let b = BatchedInversionSampler::new(&c, 0.3, StartPhase::WorkloadStart);
        let mut shared = SharedChunk::new();
        a.prepare_chunk(&mut shared, 42, 1024);
        let mut fresh_a = PointScratch::new();
        let mut fresh_b = PointScratch::new();
        a.finish_chunk(&shared, &mut fresh_a, 1024);
        b.finish_chunk(&shared, &mut fresh_b, 1024);
        let mut reused = PointScratch::new();
        a.finish_chunk(&shared, &mut reused, 1024);
        assert_eq!(reused.ttfs(), fresh_a.ttfs());
        b.finish_chunk(&shared, &mut reused, 1024);
        assert_eq!(reused.ttfs(), fresh_b.ttfs());
        a.finish_chunk(&shared, &mut reused, 1024);
        assert_eq!(reused.ttfs(), fresh_a.ttfs(), "scratch state leaked between points");
    }

    #[test]
    fn chunk_stats_equal_a_scalar_fold_of_the_ttf_buffer() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let c = compiled(&trace);
        let sampler = BatchedInversionSampler::new(&c, 0.01, StartPhase::WorkloadStart);
        let mut scratch = BatchScratch::new();
        let ttfs: Vec<f64> = sampler.sample_chunk(&mut scratch, 5, 1024).to_vec();
        let (_, stats) = sampler.sample_chunk_with_stats(&mut scratch, 5, 1024);
        assert_eq!(stats.count(), 1024);
        assert_eq!(stats.min(), ttfs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(stats.max(), ttfs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        let reference = RunningStats::from_slice(&ttfs);
        assert_eq!(stats.mean().to_bits(), reference.mean().to_bits());
    }
}
