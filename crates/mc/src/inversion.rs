//! The O(1)-per-trial inversion sampler: time to failure by inverting the
//! cumulative-vulnerability function.
//!
//! # Why the event loop can be replaced by one draw
//!
//! The event-loop sampler ([`crate::sampler`]) walks a homogeneous
//! Poisson(λ) raw-error arrival stream and accepts each arrival striking
//! cycle `t` independently with probability `v(t)` (the Bernoulli masking
//! draw; skipped when `v ∈ {0, 1}`). By the Poisson thinning theorem, the
//! accepted arrivals form an **inhomogeneous Poisson process with intensity
//! `λ·v(t)`** — the Bernoulli draw is not extra randomness on top of the
//! arrival process, it *is* the intensity modulation, including fractional
//! `v`. The time to failure is the first accepted arrival, so with
//! `V(t) = ∫₀ᵗ v(s) ds` (extended periodically, `V(t + L) = V(t) + V(L)`)
//! and a trial starting at phase `φ`:
//!
//! ```text
//! P(TTF > t) = exp(−λ·[V(φ + t) − V(φ)])
//! ```
//!
//! Therefore `Λ(t) = λ·[V(φ + t) − V(φ)]` is the integrated intensity and
//! `TTF = Λ⁻¹(E)` for `E ~ Exp(1)` is an *exact* sample — the same
//! distribution the event loop walks out one arrival at a time, at any λL
//! and for any fractional-vulnerability trace. The KS-equivalence suite
//! (`tests/sampler_equivalence.rs`) pins this identity empirically across
//! λL ∈ {1e-9, 1, 2000}.
//!
//! # Inverting Λ in O(1)
//!
//! Write `W = V(L)` for the mass of one whole period (`avf × L`,
//! [`CompiledTrace::total_mass`]). The inversion splits `E/λ` — the
//! exposure mass consumed before failure — into three parts, each sampled
//! at bounded magnitude (no `E/λ ~ 10⁹·W` cancellation):
//!
//! 1. **First partial window** `[φ, L)` with mass `tail₀ = W − V(φ)`:
//!    failure lands here with probability `p₀ = 1 − e^{−λ·tail₀}`. If so,
//!    the conditional mass beyond `V(φ)` is truncated-`Exp(λ)` on
//!    `[0, tail₀)` and the failing phase is `ψ = V⁻¹(V(φ) + m)`.
//! 2. **Whole periods skipped**: by memorylessness, given survival of the
//!    first window, `K ~ Geometric(1 − q)`, `q = e^{−λW}` — same law as
//!    the event loop's period skip, sampled as `⌊ln u / (−λW)⌋`.
//! 3. **Final window**: mass `m` is truncated-`Exp(λ)` on `[0, W)`; the
//!    failing phase is `ψ = V⁻¹(m)`.
//!
//! `V⁻¹` is [`CompiledTrace::phase_at_cumulative`]: a bucketed inverse
//! index over the compiled prefix sums, O(1) amortized. Total cost: 2–3
//! RNG draws, two logs, one inverse lookup — **independent of AVF and
//! λL**, where the event loop needs ~1/AVF events per trial.
//!
//! Consequence for fault injection: this sampler reads the prefix table on
//! every trial, so `TracePrefixPerturb` corruption (invisible to the event
//! loop's point queries) now skews estimates directly — the guarded path
//! must verify a compiled trace before trusting it (see
//! [`CompiledTrace::verify`] and the chaos taxonomy in `serr-inject`).

use rand::Rng;
use serr_numeric::special::one_minus_exp_neg;
use serr_trace::{CompiledTrace, VulnerabilityTrace};

use crate::sampler::TrialOutcome;

/// Samples one time to failure by inverting the cumulative-vulnerability
/// function of `trace` — O(1) per trial. Exact for any λ and any trace
/// (fractional vulnerabilities included); distribution-identical to
/// [`crate::sampler::sample_time_to_failure`].
///
/// Always succeeds in bounded time (no event cap needed); the returned
/// [`TrialOutcome::events`] is the single failing raw-error event.
///
/// # Panics
///
/// Panics if `lambda_cycle` is not positive, `initial_phase` lies outside
/// the period, or the trace has AVF = 0 (a failure would never occur;
/// callers validate this up front).
pub fn sample_time_to_failure_inversion(
    trace: &CompiledTrace,
    lambda_cycle: f64,
    rng: &mut impl Rng,
    initial_phase: f64,
) -> TrialOutcome {
    assert!(lambda_cycle > 0.0, "per-cycle rate must be positive");
    let l = trace.period_cycles() as f64;
    assert!((0.0..l).contains(&initial_phase), "initial phase {initial_phase} outside [0, {l})");
    let total = trace.total_mass();
    assert!(total > 0.0, "AVF = 0 trace cannot fail");

    let neg_inv_lambda = -1.0 / lambda_cycle;
    // Masses handed to the inverse lookup must stay strictly below the
    // period total; one next_down absorbs any rounding-up in the draws.
    let mass_cap = total.next_down();

    // Part 1: does failure land in the first partial window [φ, L)?
    let v_phi = trace.cumulative_at(initial_phase);
    let tail0 = (total - v_phi).max(0.0);
    let p0 = one_minus_exp_neg(lambda_cycle * tail0);
    let u1: f64 = rng.gen::<f64>();
    if u1 < p0 {
        // Conditional mass beyond V(φ): truncated Exp(λ) on [0, tail0).
        let u3: f64 = rng.gen::<f64>();
        let m = (-(u3 * p0)).ln_1p() * neg_inv_lambda;
        let psi = trace.phase_at_cumulative((v_phi + m).min(mass_cap));
        return TrialOutcome { ttf_cycles: (psi - initial_phase).max(0.0), events: 1 };
    }

    // Part 2: whole periods skipped after the first window — geometric via
    // one uniform, with the same e^{−λW} underflow guard as the event loop.
    let lambda_w = lambda_cycle * total;
    let k = if lambda_w > 700.0 {
        0.0
    } else {
        // `1 − gen::<f64>()` lies in (0, 1], so the log is finite.
        let u2: f64 = 1.0 - rng.gen::<f64>();
        (u2.ln() * (-1.0 / lambda_w)).floor()
    };

    // Part 3: failing mass within the final window — truncated Exp(λ) on
    // [0, W), inverted through the prefix table.
    let one_minus_q = one_minus_exp_neg(lambda_w);
    let u3: f64 = rng.gen::<f64>();
    let m = (-(u3 * one_minus_q)).ln_1p() * neg_inv_lambda;
    let psi = trace.phase_at_cumulative(m.min(mass_cap));
    TrialOutcome { ttf_cycles: (l - initial_phase) + k * l + psi, events: 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use serr_numeric::stats::RunningStats;
    use serr_trace::IntervalTrace;

    fn compiled(trace: &IntervalTrace) -> CompiledTrace {
        CompiledTrace::compile(trace).expect("test traces compile")
    }

    fn run_mean(trace: &IntervalTrace, lambda: f64, trials: u64, seed: u64) -> RunningStats {
        let c = compiled(trace);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stats = RunningStats::new();
        for _ in 0..trials {
            stats.push(sample_time_to_failure_inversion(&c, lambda, &mut rng, 0.0).ttf_cycles);
        }
        stats
    }

    #[test]
    fn fully_vulnerable_matches_exponential_mean() {
        let trace = IntervalTrace::constant(100, 1.0).unwrap();
        let lambda = 0.02;
        let stats = run_mean(&trace, lambda, 50_000, 1);
        let want = 1.0 / lambda;
        assert!(
            (stats.mean() - want).abs() < 4.0 * stats.ci95_half_width().max(1e-9),
            "mean {} want {want}",
            stats.mean()
        );
        let c = compiled(&trace);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(sample_time_to_failure_inversion(&c, lambda, &mut rng, 0.0).events, 1);
    }

    #[test]
    fn matches_renewal_closed_form_busy_idle() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let lambda = 0.01; // λL = 1.0
        let stats = run_mean(&trace, lambda, 200_000, 3);
        let want = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.01, "MC {} vs renewal {want}: err {err}", stats.mean());
    }

    #[test]
    fn matches_renewal_with_fractional_vulnerability() {
        // Fractional levels: the thinning identity must hold with no
        // Bernoulli draw anywhere in this sampler.
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let lambda = 0.05;
        let stats = run_mean(&trace, lambda, 200_000, 4);
        let want = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.015, "MC {} vs renewal {want}: err {err}", stats.mean());
    }

    #[test]
    fn tiny_lambda_l_matches_avf_formula() {
        // λL = 1e-9: K is astronomically large; magnitudes must not cancel.
        let trace = IntervalTrace::busy_idle(25, 75).unwrap();
        let lambda = 1e-11;
        let stats = run_mean(&trace, lambda, 20_000, 5);
        let want = 1.0 / (lambda * 0.25);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.03, "MC {} vs AVF {want}: err {err}", stats.mean());
    }

    #[test]
    fn huge_lambda_l_is_stable() {
        // λL = 2000: e^{−λW} underflows; failures land in the first busy
        // window essentially always.
        let trace = IntervalTrace::busy_idle(1000, 1000).unwrap();
        let lambda = 1.0;
        let stats = run_mean(&trace, lambda, 20_000, 6);
        assert!((stats.mean() - 1.0).abs() < 0.05, "mean {}", stats.mean());
    }

    #[test]
    fn stationary_start_matches_phase_averaged_renewal() {
        let trace = IntervalTrace::busy_idle(500, 500).unwrap();
        let c = compiled(&trace);
        let lambda = 0.007;
        let mut rng = SmallRng::seed_from_u64(21);
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            let phase = rng.gen_range(0.0..1000.0);
            stats.push(sample_time_to_failure_inversion(&c, lambda, &mut rng, phase).ttf_cycles);
        }
        use std::sync::Arc;
        let arc: Arc<dyn VulnerabilityTrace> = Arc::new(trace.clone());
        let shifts = 1000u64;
        let want: f64 = (0..shifts)
            .map(|i| {
                let t = serr_trace::ShiftedTrace::new(arc.clone(), i);
                serr_analytic::renewal::renewal_mttf_cycles(&t, lambda)
            })
            .sum::<f64>()
            / shifts as f64;
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.02, "MC {} vs shift-averaged renewal {want}: {err}", stats.mean());
    }

    #[test]
    fn initial_phase_in_dead_segment_is_exact() {
        // A trial starting mid-idle must wait for the next busy window:
        // V(φ) sits on the prefix plateau and the first-window inversion
        // lands at (or after) the next vulnerable cycle.
        let trace = IntervalTrace::busy_idle(100, 300).unwrap();
        let c = compiled(&trace);
        let lambda = 0.001;
        let mut rng = SmallRng::seed_from_u64(31);
        let mut stats = RunningStats::new();
        let phase = 250.0; // mid-idle
        for _ in 0..100_000 {
            let out = sample_time_to_failure_inversion(&c, lambda, &mut rng, phase);
            // Time to the next busy window is 150 cycles; no failure can
            // occur before that.
            assert!(out.ttf_cycles >= 150.0, "failed during idle: {}", out.ttf_cycles);
            stats.push(out.ttf_cycles);
        }
        let shifted = serr_trace::ShiftedTrace::new(
            std::sync::Arc::new(trace) as std::sync::Arc<dyn VulnerabilityTrace>,
            250,
        );
        let want = serr_analytic::renewal::renewal_mttf_cycles(&shifted, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.02, "MC {} vs shifted renewal {want}: {err}", stats.mean());
    }

    /// Scripted RNG for driving the numeric guards: yields the given
    /// 64-bit words in order and repeats the last one forever. `u64::MAX`
    /// maps to the largest representable uniform `1 − 2⁻⁵³`; `0` maps to
    /// `u = 0` exactly — the two edges of rand 0.8's 53-bit grid.
    struct WordRng {
        words: Vec<u64>,
        at: usize,
    }

    impl rand::RngCore for WordRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.at.min(self.words.len() - 1)];
            self.at += 1;
            w
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    fn scripted(words: &[u64]) -> WordRng {
        WordRng { words: words.to_vec(), at: 0 }
    }

    #[test]
    fn lambda_w_overflow_guard_forces_zero_period_skips() {
        // λW = 1000 > 700: e^{−λW} underflows, so the geometric skip count
        // must come from the guard (k = 0), never from ln(u)/ln(q) with a
        // denominator of −∞. Starting mid-idle makes p₀ = 0, so part 2 runs
        // regardless of the first uniform.
        let trace = IntervalTrace::busy_idle(1000, 1000).unwrap();
        let c = compiled(&trace);
        let phase = 1500.0;
        // u₃ = 0 ⇒ zero final-window mass ⇒ TTF is exactly the wait for
        // the next busy window: no period is ever skipped.
        let out = sample_time_to_failure_inversion(&c, 1.0, &mut scripted(&[0]), phase);
        assert_eq!(out.ttf_cycles, 500.0, "k must be 0 under the overflow guard");
        // u₃ → 1⁻ ⇒ the largest mass draw; still finite, still within the
        // first unskipped period.
        let out = sample_time_to_failure_inversion(&c, 1.0, &mut scripted(&[u64::MAX]), phase);
        assert!(out.ttf_cycles.is_finite());
        assert!(
            (500.0..2500.0).contains(&out.ttf_cycles),
            "ttf {} skipped a period despite λW > 700",
            out.ttf_cycles
        );
    }

    #[test]
    fn extreme_uniforms_produce_finite_draws() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let c = compiled(&trace);
        let lambda = 0.01; // λW = 0.3: all three parts reachable

        // u → 0 on every draw: part 1 with zero conditional mass. The log
        // path sees ln_1p(−0) = 0, never ln(0) = −∞.
        let out = sample_time_to_failure_inversion(&c, lambda, &mut scripted(&[0]), 0.0);
        assert!(out.ttf_cycles.is_finite() && out.ttf_cycles >= 0.0, "ttf {}", out.ttf_cycles);

        // u → 1⁻ on every draw: part 2 with the maximal period skip
        // (1 − u = 2⁻⁵³ exactly, so ln gives −36.74 and k = ⌊36.74/λW⌋
        // = 122) and the maximal final-window mass. That mass rounds up to
        // the per-period cap, where the clamp holds it, so ψ lands exactly
        // at the busy-window end — the range's upper edge is attainable.
        let out = sample_time_to_failure_inversion(&c, lambda, &mut scripted(&[u64::MAX]), 0.0);
        assert!(out.ttf_cycles.is_finite(), "ttf {}", out.ttf_cycles);
        let (k, l) = (122.0, 100.0);
        assert!(
            (k * l + l..=k * l + l + 30.0).contains(&out.ttf_cycles),
            "ttf {} disagrees with the hand-computed skip count",
            out.ttf_cycles
        );

        // u₁ → 0 then u₃ → 1⁻: part 1's truncated-Exp draw at its upper
        // edge; the mass must land strictly inside the first window.
        let out = sample_time_to_failure_inversion(&c, lambda, &mut scripted(&[0, u64::MAX]), 0.0);
        assert!(out.ttf_cycles.is_finite());
        assert!((0.0..30.0).contains(&out.ttf_cycles), "ttf {}", out.ttf_cycles);

        // p₀ rounds to exactly 1.0 (λ·tail₀ = 1000): u₃ → 1⁻ exercises
        // ln_1p at −(1 − 2⁻⁵³), the closest the argument can get to the
        // singularity. Finite by construction of the 53-bit grid.
        let dense = IntervalTrace::constant(100, 1.0).unwrap();
        let dc = compiled(&dense);
        let out = sample_time_to_failure_inversion(&dc, 10.0, &mut scripted(&[u64::MAX]), 0.0);
        assert!(out.ttf_cycles.is_finite() && out.ttf_cycles >= 0.0, "ttf {}", out.ttf_cycles);
        assert_eq!(out.events, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = IntervalTrace::busy_idle(5, 5).unwrap();
        let c = compiled(&trace);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let x = sample_time_to_failure_inversion(&c, 0.01, &mut a, 0.0);
        let y = sample_time_to_failure_inversion(&c, 0.01, &mut b, 0.0);
        assert_eq!(x, y);
    }
}
