//! Monte Carlo engine configuration.

use serde::{Deserialize, Serialize};

/// Where within the workload loop each trial begins.
///
/// The paper's Monte Carlo implicitly starts every trial at the beginning
/// of the workload (cycle 0 — for the `day` workload, the start of the busy
/// half). For a long-running system observed at a random time, the
/// stationary convention is the physically neutral choice; the SOFR-step
/// discrepancy is sensitive to this (see the `ablation_phase` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StartPhase {
    /// Every trial starts at cycle 0 of the loop (the paper's convention).
    #[default]
    WorkloadStart,
    /// Each trial starts at an independent uniformly random phase.
    Stationary,
}

/// Configuration for the Monte Carlo MTTF engine.
///
/// The paper runs 1,000,000 trials; the default here is 200,000, which
/// resolves MTTFs to well under 1% (95% CI) for every workload in the design
/// space — raise it when chasing the last decimal.
///
/// ```
/// use serr_mc::MonteCarloConfig;
/// let cfg = MonteCarloConfig { trials: 1_000_000, seed: 7, ..Default::default() };
/// assert_eq!(cfg.trials, 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent time-to-failure trials to average.
    pub trials: u64,
    /// Base seed; every trial derives a distinct deterministic stream from
    /// it, so results are exactly reproducible at any thread count.
    pub seed: u64,
    /// Worker threads; `0` means use all available parallelism.
    pub threads: usize,
    /// Safety cap on raw-error events within one trial. A trial exceeding
    /// this (possible only if the effective vulnerability is pathologically
    /// tiny but nonzero) aborts the run with an error instead of spinning.
    pub max_events_per_trial: u64,
    /// Where within the workload loop each trial begins.
    pub start_phase: StartPhase,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            trials: 200_000,
            seed: 0x5EED_50F7_0E44_0007,
            threads: 0,
            max_events_per_trial: 100_000_000,
            start_phase: StartPhase::WorkloadStart,
        }
    }
}

impl MonteCarloConfig {
    /// A small-trial configuration for quick tests (20,000 trials).
    #[must_use]
    pub fn fast() -> Self {
        MonteCarloConfig { trials: 20_000, ..Default::default() }
    }

    /// The paper's full 1,000,000-trial configuration.
    #[must_use]
    pub fn paper() -> Self {
        MonteCarloConfig { trials: 1_000_000, ..Default::default() }
    }

    /// Resolved worker thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = MonteCarloConfig::default();
        assert_eq!(cfg.trials, 200_000);
        assert!(cfg.effective_threads() >= 1);
        assert!(cfg.max_events_per_trial > 1_000_000);
    }

    #[test]
    fn start_phase_default_is_paper_convention() {
        assert_eq!(MonteCarloConfig::default().start_phase, StartPhase::WorkloadStart);
    }

    #[test]
    fn presets() {
        assert_eq!(MonteCarloConfig::fast().trials, 20_000);
        assert_eq!(MonteCarloConfig::paper().trials, 1_000_000);
        let pinned = MonteCarloConfig { threads: 3, ..Default::default() };
        assert_eq!(pinned.effective_threads(), 3);
    }
}
