//! Monte Carlo engine configuration.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use serr_inject::FaultPlan;
use serr_types::SerrError;

/// Where within the workload loop each trial begins.
///
/// The paper's Monte Carlo implicitly starts every trial at the beginning
/// of the workload (cycle 0 — for the `day` workload, the start of the busy
/// half). For a long-running system observed at a random time, the
/// stationary convention is the physically neutral choice; the SOFR-step
/// discrepancy is sensitive to this (see the `ablation_phase` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StartPhase {
    /// Every trial starts at cycle 0 of the loop (the paper's convention).
    #[default]
    WorkloadStart,
    /// Each trial starts at an independent uniformly random phase.
    Stationary,
}

/// Which time-to-failure sampler the engine runs per trial.
///
/// Both samplers draw from the *same* distribution (the KS-equivalence
/// suite pins this): thinning a homogeneous Poisson(λ) raw-error stream by
/// the masking trace `v(t)` is an inhomogeneous Poisson process with
/// intensity `λ·v(t)`, so `P(TTF > t) = exp(−λ·V(t))` either way. They
/// differ only in cost — and in which compiled tables they read, which is
/// why the chaos taxonomy distinguishes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Walk raw-error events one at a time (the paper's Appendix A
    /// decomposition): geometric period skip + truncated-exponential
    /// within-period draw + Bernoulli masking per event. Costs ~1/AVF
    /// events per trial; reads only point values. Kept as the
    /// cross-check oracle in the guarded estimation path.
    EventLoop,
    /// Invert the cumulative-vulnerability function: one `Exp(1)` draw,
    /// split into whole periods plus a remainder located in the compiled
    /// prefix table — O(1) per trial, independent of AVF and λL. Requires
    /// a [`serr_trace::CompiledTrace`]; traces too large to compile fall
    /// back to the event loop. Kept as the scalar oracle for the batched
    /// sampler's equivalence suite.
    Inversion,
    /// The same inversion transform restructured so a whole trial chunk is
    /// the unit of work: counter-based RNG words, structure-of-arrays
    /// buffers, and branchless array passes (see `serr_mc::batched`).
    /// Samples the identical distribution as [`SamplerKind::Inversion`]
    /// from a *different* (versioned) random stream — estimates are
    /// statistically interchangeable but not bit-equal across sampler
    /// kinds. Falls back to the event loop when the trace cannot compile.
    #[default]
    BatchedInversion,
}

impl SamplerKind {
    /// Stable lowercase label (CLI values, telemetry keys, bench JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SamplerKind::EventLoop => "event-loop",
            SamplerKind::Inversion => "inversion",
            SamplerKind::BatchedInversion => "batched-inversion",
        }
    }

    /// Parses a CLI-style label.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for anything other than
    /// `event-loop`, `inversion`, or `batched-inversion`.
    pub fn parse(s: &str) -> Result<Self, SerrError> {
        match s {
            "event-loop" => Ok(SamplerKind::EventLoop),
            "inversion" => Ok(SamplerKind::Inversion),
            "batched-inversion" => Ok(SamplerKind::BatchedInversion),
            other => Err(SerrError::invalid_config(format!(
                "unknown sampler {other:?} (expected event-loop, inversion, or batched-inversion)"
            ))),
        }
    }
}

/// Configuration for the Monte Carlo MTTF engine.
///
/// The paper runs 1,000,000 trials; the default here is 200,000, which
/// resolves MTTFs to well under 1% (95% CI) for every workload in the design
/// space — raise it when chasing the last decimal.
///
/// ```
/// use serr_mc::MonteCarloConfig;
/// let cfg = MonteCarloConfig { trials: 1_000_000, seed: 7, ..Default::default() };
/// assert_eq!(cfg.trials, 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent time-to-failure trials to average.
    pub trials: u64,
    /// Base seed; every trial derives a distinct deterministic stream from
    /// it, so results are exactly reproducible at any thread count.
    pub seed: u64,
    /// Worker threads; `0` means use all available parallelism.
    pub threads: usize,
    /// Safety cap on raw-error events within one trial. A trial exceeding
    /// this (possible only if the effective vulnerability is pathologically
    /// tiny but nonzero) aborts the run with an error instead of spinning.
    pub max_events_per_trial: u64,
    /// Where within the workload loop each trial begins.
    pub start_phase: StartPhase,
    /// Which per-trial time-to-failure sampler to run (see [`SamplerKind`]).
    pub sampler: SamplerKind,
    /// Optional wall-clock budget for one engine run. A budget that is
    /// already exhausted when the run starts (zero, or elapsed before the
    /// first chunk) aborts immediately with
    /// [`SerrError::DeadlineExhausted`]. Otherwise, when the budget expires
    /// mid-run, workers stop claiming new trial chunks (each finishes the
    /// chunk it is on) and the engine returns a *partial* estimate flagged
    /// [`truncated`](crate::MttfEstimate::truncated) with the honestly wider
    /// confidence interval of the trials that did run. `None` (the default)
    /// runs every configured trial.
    pub deadline: Option<Duration>,
    /// Deterministic fault-injection plan for chaos testing. `None` (the
    /// default, and the only sensible production value) injects nothing and
    /// costs one branch per chunk. `Some(plan)` makes the engine consult the
    /// plan's pure seed-derived queries for injected worker panics and
    /// artificial deadline exhaustion — see `serr-inject`.
    pub chaos: Option<FaultPlan>,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            trials: 200_000,
            seed: 0x5EED_50F7_0E44_0007,
            threads: 0,
            max_events_per_trial: 100_000_000,
            start_phase: StartPhase::WorkloadStart,
            sampler: SamplerKind::BatchedInversion,
            deadline: None,
            chaos: None,
        }
    }
}

impl MonteCarloConfig {
    /// A small-trial configuration for quick tests (20,000 trials).
    #[must_use]
    pub fn fast() -> Self {
        MonteCarloConfig { trials: 20_000, ..Default::default() }
    }

    /// The paper's full 1,000,000-trial configuration.
    #[must_use]
    pub fn paper() -> Self {
        MonteCarloConfig { trials: 1_000_000, ..Default::default() }
    }

    /// Checks the configuration for degenerate values before a run starts.
    ///
    /// A zero `deadline` passes validation but any run under it fails with
    /// [`SerrError::DeadlineExhausted`]: the budget is exhausted before the
    /// first chunk, so not even a truncated estimate would be honest.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for zero `trials` or a zero
    /// per-trial event cap.
    pub fn validate(&self) -> Result<(), SerrError> {
        if self.trials == 0 {
            return Err(SerrError::invalid_config("trial count must be positive"));
        }
        if self.max_events_per_trial == 0 {
            return Err(SerrError::invalid_config(
                "max_events_per_trial must be positive (every failing trial consumes at least one event)",
            ));
        }
        Ok(())
    }

    /// Resolved worker thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = MonteCarloConfig::default();
        assert_eq!(cfg.trials, 200_000);
        assert!(cfg.effective_threads() >= 1);
        assert!(cfg.max_events_per_trial > 1_000_000);
    }

    #[test]
    fn start_phase_default_is_paper_convention() {
        assert_eq!(MonteCarloConfig::default().start_phase, StartPhase::WorkloadStart);
    }

    #[test]
    fn sampler_defaults_to_batched_inversion_and_labels_round_trip() {
        assert_eq!(MonteCarloConfig::default().sampler, SamplerKind::BatchedInversion);
        for kind in [SamplerKind::EventLoop, SamplerKind::Inversion, SamplerKind::BatchedInversion]
        {
            assert_eq!(SamplerKind::parse(kind.label()).expect("label parses"), kind);
        }
        assert!(SamplerKind::parse("naive").is_err());
        assert!(SamplerKind::parse("").is_err());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(MonteCarloConfig::default().validate().is_ok());
        let zero_trials = MonteCarloConfig { trials: 0, ..Default::default() };
        assert!(zero_trials.validate().is_err());
        let zero_cap = MonteCarloConfig { max_events_per_trial: 0, ..Default::default() };
        assert!(zero_cap.validate().is_err());
        // Zero deadline passes validation; the *run* rejects it with the
        // typed deadline-exhausted error (see engine tests).
        let zero_deadline =
            MonteCarloConfig { deadline: Some(Duration::ZERO), ..Default::default() };
        assert!(zero_deadline.validate().is_ok());
    }

    #[test]
    fn presets() {
        assert_eq!(MonteCarloConfig::fast().trials, 20_000);
        assert_eq!(MonteCarloConfig::paper().trials, 1_000_000);
        let pinned = MonteCarloConfig { threads: 3, ..Default::default() };
        assert_eq!(pinned.effective_threads(), 3);
    }
}
