//! The per-trial time-to-failure sampler.
//!
//! One trial walks the raw-error arrival process until an arrival strikes a
//! cycle where the error is *not* masked — a vulnerable (unmasked) position
//! of the workload loop. Inter-arrival times are `Exp(λ)`; by the
//! memorylessness decomposition of the paper's Appendix A, an inter-arrival
//! splits into independent parts
//!
//! * `K` whole workload periods, geometric with `P(K = k) = q^k(1−q)`,
//!   `q = e^{−λL}`, and
//! * a phase advance `R ∈ [0, L)` with the truncated-exponential density
//!   `λe^{−λr}/(1 − e^{−λL})`,
//!
//! both of which are sampled at magnitudes `≤ L` — no precision is lost even
//! when the mean time between raw errors is 10⁹ periods.
//!
//! The sampler is generic over the trace type so that the engine can hand it
//! a concrete [`serr_trace::CompiledTrace`] and the per-event loop compiles
//! down to direct, inlinable calls — no virtual dispatch on the hot path.
//! `&dyn VulnerabilityTrace` still works (the trait is object-safe and
//! `?Sized` is accepted) for traces that cannot be compiled.

use rand::Rng;
use serr_numeric::special::one_minus_exp_neg;
use serr_trace::VulnerabilityTrace;
use serr_types::SerrError;

/// The outcome of one Monte Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Time to failure in cycles.
    pub ttf_cycles: f64,
    /// Raw error events consumed before the failing one (inclusive).
    pub events: u64,
}

/// Samples one time to failure for a component with per-cycle raw error rate
/// `lambda_cycle` running `trace`, with the trial starting at
/// `initial_phase` cycles into the workload loop (`0` is the paper's
/// convention; see [`crate::config::StartPhase`]).
///
/// # Errors
///
/// Returns [`SerrError::NoConvergence`] if `max_events` raw errors are
/// generated without a failure.
///
/// # Panics
///
/// Panics if `lambda_cycle` is not positive, `initial_phase` lies outside
/// the period, or the trace has AVF = 0 (a failure would never occur;
/// callers validate this up front).
pub fn sample_time_to_failure<T: VulnerabilityTrace + ?Sized>(
    trace: &T,
    lambda_cycle: f64,
    max_events: u64,
    rng: &mut impl Rng,
    initial_phase: f64,
) -> Result<TrialOutcome, SerrError> {
    assert!(lambda_cycle > 0.0, "per-cycle rate must be positive");
    debug_assert!(!trace.is_never_vulnerable(), "AVF = 0 trace cannot fail");

    let period = trace.period_cycles();
    let l = period as f64;
    assert!((0.0..l).contains(&initial_phase), "initial phase {initial_phase} outside [0, {l})");
    let lambda_l = lambda_cycle * l;
    // 1 − q = 1 − e^{−λL}, computed stably for both tiny and huge λL.
    let one_minus_q = one_minus_exp_neg(lambda_l);
    // 0/1-valued traces never need the Bernoulli masking draw; hoist the
    // decision out of the event loop (precomputed for compiled traces).
    let binary = trace.is_binary();
    let q_underflowed = lambda_l > 700.0;
    // Per-event divisions replaced by multiplies with hoisted inverses.
    let neg_inv_lambda_l = -1.0 / lambda_l;
    let neg_inv_lambda = -1.0 / lambda_cycle;
    let r_cap = l * (1.0 - f64::EPSILON);

    let mut phase = initial_phase; // current position within the period
    let mut whole_periods = 0.0_f64; // accumulated K·L contributions, in periods
    let mut residual = 0.0_f64; // accumulated phase advances, in cycles
    let mut events = 0u64;

    loop {
        events += 1;
        if events > max_events {
            return Err(SerrError::NoConvergence {
                what: "monte carlo trial (raw error events without failure)".into(),
                after: max_events as usize,
            });
        }

        // K ~ Geometric(1−q): whole periods skipped by this inter-arrival.
        // `1 − gen::<f64>()` lies in (0, 1], so the log is finite.
        let u: f64 = 1.0 - rng.gen::<f64>();
        let k = if q_underflowed {
            // q underflowed; the arrival is essentially always within the
            // current period.
            0.0
        } else {
            (u.ln() * neg_inv_lambda_l).floor()
        };

        // R ~ truncated Exp(λ) on [0, L): the exact phase-advance law.
        let v: f64 = rng.gen::<f64>();
        let r = ((-(v * one_minus_q)).ln_1p() * neg_inv_lambda).min(r_cap);

        whole_periods += k;
        residual += r;
        phase += r;
        if phase >= l {
            phase -= l;
            whole_periods += 1.0;
            residual -= l;
        }

        // Resolve masking at the struck cycle.
        let vuln = trace.vulnerability_at(phase as u64);
        if binary {
            if vuln != 0.0 {
                return Ok(TrialOutcome { ttf_cycles: whole_periods * l + residual, events });
            }
        } else if vuln > 0.0 && (vuln >= 1.0 || rng.gen::<f64>() < vuln) {
            return Ok(TrialOutcome { ttf_cycles: whole_periods * l + residual, events });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use serr_numeric::stats::RunningStats;
    use serr_trace::IntervalTrace;

    fn run_mean(trace: &IntervalTrace, lambda: f64, trials: u64, seed: u64) -> RunningStats {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stats = RunningStats::new();
        for _ in 0..trials {
            let out = sample_time_to_failure(trace, lambda, 1_000_000, &mut rng, 0.0).unwrap();
            stats.push(out.ttf_cycles);
        }
        stats
    }

    #[test]
    fn fully_vulnerable_matches_exponential_mean() {
        let trace = IntervalTrace::constant(100, 1.0).unwrap();
        let lambda = 0.02;
        let stats = run_mean(&trace, lambda, 50_000, 1);
        let want = 1.0 / lambda;
        assert!(
            (stats.mean() - want).abs() < 4.0 * stats.ci95_half_width().max(1e-9),
            "mean {} want {want}",
            stats.mean()
        );
        // Every trial ends on the first event.
        let mut rng = SmallRng::seed_from_u64(2);
        let out = sample_time_to_failure(&trace, lambda, 10, &mut rng, 0.0).unwrap();
        assert_eq!(out.events, 1);
    }

    #[test]
    fn matches_renewal_closed_form_busy_idle() {
        // λL ~ 1: squarely in the regime where AVF is wrong but the renewal
        // formula (and this sampler) must still be right.
        let (a, idle) = (30u64, 70u64);
        let trace = IntervalTrace::busy_idle(a, idle).unwrap();
        let lambda = 0.01; // λL = 1.0
        let stats = run_mean(&trace, lambda, 200_000, 3);
        let want = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.01, "MC {} vs renewal {want}: err {err}", stats.mean());
    }

    #[test]
    fn matches_renewal_with_fractional_vulnerability() {
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let lambda = 0.05;
        let stats = run_mean(&trace, lambda, 200_000, 4);
        let want = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.015, "MC {} vs renewal {want}: err {err}", stats.mean());
    }

    #[test]
    fn tiny_lambda_l_matches_avf_formula() {
        // λL = 1e-9: the AVF-valid regime; also exercises the geometric
        // period-skipping path (K is astronomically large here).
        let trace = IntervalTrace::busy_idle(25, 75).unwrap();
        let lambda = 1e-11;
        let stats = run_mean(&trace, lambda, 20_000, 5);
        let want = 1.0 / (lambda * 0.25);
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.03, "MC {} vs AVF {want}: err {err}", stats.mean());
    }

    #[test]
    fn huge_lambda_l_is_stable() {
        // λL = 2000: e^{-λL} underflows; failures happen within the first
        // busy window essentially always.
        let trace = IntervalTrace::busy_idle(1000, 1000).unwrap();
        let lambda = 1.0;
        let stats = run_mean(&trace, lambda, 20_000, 6);
        assert!((stats.mean() - 1.0).abs() < 0.05, "mean {}", stats.mean());
    }

    #[test]
    fn event_counts_follow_geometric_mean() {
        // Expected events per trial = 1/AVF for a 0/1 trace in the small-λL
        // limit (K geometric with success probability AVF).
        let trace = IntervalTrace::busy_idle(10, 30).unwrap();
        let lambda = 1e-9;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut total_events = 0u64;
        let trials = 20_000;
        for _ in 0..trials {
            total_events +=
                sample_time_to_failure(&trace, lambda, 1_000_000, &mut rng, 0.0).unwrap().events;
        }
        let mean_events = total_events as f64 / trials as f64;
        assert!((mean_events - 4.0).abs() < 0.15, "mean events {mean_events}");
    }

    #[test]
    fn max_events_cap_triggers() {
        // Vulnerability 1e-9 everywhere: with a cap of 100 events the trial
        // almost surely aborts.
        let trace = IntervalTrace::constant(10, 1e-9).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let res = sample_time_to_failure(&trace, 0.1, 100, &mut rng, 0.0);
        assert!(matches!(res, Err(SerrError::NoConvergence { .. })));
    }

    #[test]
    fn stationary_start_matches_phase_averaged_renewal() {
        // Day-like trace, λL = 6.85-ish: the stationary MTTF is the
        // shift-averaged renewal MTTF, which differs strongly from the
        // busy-start value.
        let trace = IntervalTrace::busy_idle(500, 500).unwrap();
        let lambda = 0.007;
        let mut rng = SmallRng::seed_from_u64(21);
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            let phase = rng.gen_range(0.0..1000.0);
            let out = sample_time_to_failure(&trace, lambda, 1_000_000, &mut rng, phase).unwrap();
            stats.push(out.ttf_cycles);
        }
        // Reference: average renewal MTTF over shifted trace views.
        use std::sync::Arc;
        let arc: Arc<dyn VulnerabilityTrace> = Arc::new(trace.clone());
        let shifts = 1000u64;
        let want: f64 = (0..shifts)
            .map(|i| {
                let t = serr_trace::ShiftedTrace::new(arc.clone(), i);
                serr_analytic::renewal::renewal_mttf_cycles(&t, lambda)
            })
            .sum::<f64>()
            / shifts as f64;
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.02, "MC {} vs shift-averaged renewal {want}: {err}", stats.mean());
        // Sanity: far from the busy-start answer.
        let busy_start = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        assert!((stats.mean() - busy_start).abs() / busy_start > 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = IntervalTrace::busy_idle(5, 5).unwrap();
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let x = sample_time_to_failure(&trace, 0.01, 1000, &mut a, 0.0).unwrap();
        let y = sample_time_to_failure(&trace, 0.01, 1000, &mut b, 0.0).unwrap();
        assert_eq!(x, y);
    }
}
