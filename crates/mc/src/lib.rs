//! First-principles Monte Carlo MTTF estimation (paper Section 4.3).
//!
//! > "For each component in the modeled system, we generate a value from an
//! > exponential distribution with rate specified by the modeled system.
//! > [...] We use the masking trace of the workload to determine whether a
//! > raw error at that time would be masked. If it is masked, we generate a
//! > new raw error event [...] If it is not masked, we consider the
//! > component failed."
//!
//! This crate implements that procedure with four engineering refinements
//! that keep it exact across the paper's entire design space:
//!
//! 1. **Exact phase sampling.** Raw-error arrival times reach 10⁶+ years
//!    while masking is resolved at 0.5 ns cycles; reducing such times modulo
//!    the loop length in `f64` would quantize the phase to multiples of
//!    thousands of cycles. Instead each inter-arrival is decomposed into
//!    (whole periods `K`, phase advance `R`): `K` is geometric and `R`
//!    follows the exact truncated-exponential phase distribution of the
//!    paper's Appendix A — both sampled at magnitudes `≤ L` with full
//!    precision (see [`sampler`]).
//! 2. **O(1) trials by inversion.** The walk over raw-error events costs
//!    ~1/AVF events per trial — worst exactly where the paper's sweeps
//!    spend their time (low AVF, low λL). The [`SamplerKind::Inversion`]
//!    sampler instead draws one `Exp(1)` variate and inverts the
//!    cumulative-vulnerability function through the compiled trace's
//!    prefix table: constant cost per trial, identical distribution (see
//!    [`inversion`] for the thinning proof).
//! 3. **Chunked trials by batching.** The default
//!    [`SamplerKind::BatchedInversion`] sampler runs the same inversion
//!    mathematics as straight-line structure-of-arrays passes over whole
//!    trial chunks — counter RNG up front, vectorized logs, a batched
//!    prefix-table probe, and a fused statistics fold — removing the
//!    per-trial RNG-state and probe overhead the scalar loop cannot
//!    vectorize away (see [`batched`]).
//! 4. **Superposition for clusters.** For a system of components running
//!    phase-aligned workloads, the union of per-component raw-error
//!    processes is itself Poisson with the summed rate, and each arrival is
//!    attributed to a component with rate-proportional probability. A
//!    500,000-processor cluster therefore costs the same per trial as a
//!    single component (see [`system::SystemModel`]).
//!
//! # Example
//!
//! ```
//! use serr_mc::{MonteCarlo, MonteCarloConfig};
//! use serr_trace::IntervalTrace;
//! use serr_types::{Frequency, RawErrorRate};
//!
//! // Fully vulnerable component: MTTF must equal 1/λ.
//! let trace = IntervalTrace::constant(1_000, 1.0).unwrap();
//! let mc = MonteCarlo::new(MonteCarloConfig { trials: 20_000, ..Default::default() });
//! let est = mc.component_mttf(&trace, RawErrorRate::per_year(2.0), Frequency::base()).unwrap();
//! let err = (est.mttf.as_years() - 0.5).abs() / 0.5;
//! assert!(err < 0.05, "relative error {err}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
mod config;
mod engine;
pub mod inversion;
pub mod naive;
pub mod sampler;
pub mod sweep;
pub mod system;

pub use config::{MonteCarloConfig, SamplerKind, StartPhase};
pub use engine::{MonteCarlo, MttfEstimate};
