//! System-of-components models for SOFR validation.
//!
//! The paper's broad design space applies SOFR to systems of `C` components
//! (up to 500,000 processors in a cluster), all running the same workload.
//! Because the per-component raw-error processes are independent Poisson
//! processes, their union is Poisson with the summed rate, and each arrival
//! strikes component *i* with probability `rateᵢ/Σrate`; when all replicas
//! are phase-aligned (the paper's assumption) this collapses to a single
//! rate-weighted [`CompositeTrace`] — so system trials cost the same as
//! component trials no matter how large `C` is.

use std::sync::Arc;

use serr_trace::{CompositeTrace, ShiftedTrace, VulnerabilityTrace};
use serr_types::{Frequency, RawErrorRate, SerrError};

/// One kind of component in a system, possibly replicated.
#[derive(Clone)]
pub struct SystemPart {
    /// Raw error rate of a single replica.
    pub rate: RawErrorRate,
    /// Masking trace of a single replica.
    pub trace: Arc<dyn VulnerabilityTrace>,
    /// Number of identical, phase-aligned replicas (the paper's `C`).
    pub multiplicity: u64,
    /// Phase offset in cycles applied to every replica of this part.
    pub phase_offset: u64,
    /// Display name for reports.
    pub name: String,
}

impl std::fmt::Debug for SystemPart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemPart")
            .field("name", &self.name)
            .field("rate", &self.rate)
            .field("multiplicity", &self.multiplicity)
            .field("phase_offset", &self.phase_offset)
            .finish()
    }
}

/// A series-failure system: the first unmasked raw error in any component
/// fails the whole system (the paper's series assumption, Section 2.3).
#[derive(Debug, Clone)]
pub struct SystemModel {
    parts: Vec<SystemPart>,
    frequency: Frequency,
}

impl SystemModel {
    /// Starts building a system clocked at `frequency`.
    #[must_use]
    pub fn builder(frequency: Frequency) -> SystemModelBuilder {
        SystemModelBuilder { parts: Vec::new(), frequency }
    }

    /// The system's parts.
    #[must_use]
    pub fn parts(&self) -> &[SystemPart] {
        &self.parts
    }

    /// The clock frequency shared by all parts.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Total raw error rate: `Σᵢ multiplicityᵢ × rateᵢ`.
    #[must_use]
    pub fn total_rate(&self) -> RawErrorRate {
        self.parts
            .iter()
            .map(|p| p.rate.scale(p.multiplicity as f64))
            .fold(RawErrorRate::ZERO, |a, b| a + b)
    }

    /// Total number of component instances (`Σ multiplicity`).
    #[must_use]
    pub fn component_count(&self) -> u64 {
        self.parts.iter().map(|p| p.multiplicity).sum()
    }

    /// The superposed system-level vulnerability trace described in the
    /// module docs.
    ///
    /// # Panics
    ///
    /// Never panics for a builder-validated model.
    #[must_use]
    pub fn combined_trace(&self) -> CompositeTrace {
        let parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)> = self
            .parts
            .iter()
            .map(|p| {
                let weight = p.rate.per_second_value() * p.multiplicity as f64;
                let trace: Arc<dyn VulnerabilityTrace> = if p.phase_offset == 0 {
                    p.trace.clone()
                } else {
                    Arc::new(ShiftedTrace::new(p.trace.clone(), p.phase_offset))
                };
                (weight, trace)
            })
            .collect();
        CompositeTrace::new(parts).expect("validated at build time")
    }
}

/// Builder for [`SystemModel`].
#[derive(Debug)]
pub struct SystemModelBuilder {
    parts: Vec<SystemPart>,
    frequency: Frequency,
}

impl SystemModelBuilder {
    /// Adds `multiplicity` phase-aligned replicas of a component.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for a zero rate or multiplicity,
    /// and [`SerrError::InvalidTrace`] if the trace's period differs from
    /// previously added parts.
    pub fn add_replicated(
        &mut self,
        name: impl Into<String>,
        rate: RawErrorRate,
        trace: Arc<dyn VulnerabilityTrace>,
        multiplicity: u64,
    ) -> Result<&mut Self, SerrError> {
        self.add_part(name, rate, trace, multiplicity, 0)
    }

    /// Adds a single component.
    ///
    /// # Errors
    ///
    /// As for [`SystemModelBuilder::add_replicated`].
    pub fn add(
        &mut self,
        name: impl Into<String>,
        rate: RawErrorRate,
        trace: Arc<dyn VulnerabilityTrace>,
    ) -> Result<&mut Self, SerrError> {
        self.add_part(name, rate, trace, 1, 0)
    }

    /// Adds one replica per entry of `offsets`, each phase-shifted — the
    /// de-synchronized-cluster ablation.
    ///
    /// # Errors
    ///
    /// As for [`SystemModelBuilder::add_replicated`].
    pub fn add_with_offsets(
        &mut self,
        name: impl Into<String>,
        rate: RawErrorRate,
        trace: Arc<dyn VulnerabilityTrace>,
        offsets: &[u64],
    ) -> Result<&mut Self, SerrError> {
        let name = name.into();
        for (i, &off) in offsets.iter().enumerate() {
            self.add_part(format!("{name}[{i}]"), rate, trace.clone(), 1, off)?;
        }
        Ok(self)
    }

    fn add_part(
        &mut self,
        name: impl Into<String>,
        rate: RawErrorRate,
        trace: Arc<dyn VulnerabilityTrace>,
        multiplicity: u64,
        phase_offset: u64,
    ) -> Result<&mut Self, SerrError> {
        if rate.is_zero() {
            return Err(SerrError::invalid_config("part raw error rate must be positive"));
        }
        if multiplicity == 0 {
            return Err(SerrError::invalid_config("part multiplicity must be positive"));
        }
        if let Some(first) = self.parts.first() {
            if first.trace.period_cycles() != trace.period_cycles() {
                return Err(SerrError::invalid_trace(format!(
                    "all parts must share one workload period: {} vs {}",
                    trace.period_cycles(),
                    first.trace.period_cycles()
                )));
            }
        }
        self.parts.push(SystemPart { rate, trace, multiplicity, phase_offset, name: name.into() });
        Ok(self)
    }

    /// Finalizes the system.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] if no parts were added.
    pub fn build(&self) -> Result<SystemModel, SerrError> {
        if self.parts.is_empty() {
            return Err(SerrError::invalid_config("system must contain at least one part"));
        }
        Ok(SystemModel { parts: self.parts.clone(), frequency: self.frequency })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn day_like() -> Arc<dyn VulnerabilityTrace> {
        Arc::new(IntervalTrace::busy_idle(500, 500).unwrap())
    }

    #[test]
    fn replication_scales_rate_not_shape() {
        let mut b = SystemModel::builder(Frequency::base());
        b.add_replicated("cpu", RawErrorRate::per_year(2.0), day_like(), 1000).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.component_count(), 1000);
        assert!((sys.total_rate().events_per_year() - 2000.0).abs() < 1e-9);
        // Identical phase-aligned replicas leave the vulnerability shape
        // untouched.
        let combined = sys.combined_trace();
        assert_eq!(combined.vulnerability_at(0), 1.0);
        assert_eq!(combined.vulnerability_at(500), 0.0);
        assert!((combined.avf() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_parts_weight_by_rate() {
        let always = Arc::new(IntervalTrace::constant(1000, 1.0).unwrap());
        let never_busy_half = day_like();
        let mut b = SystemModel::builder(Frequency::base());
        b.add("hot", RawErrorRate::per_year(3.0), always).unwrap();
        b.add("cold", RawErrorRate::per_year(1.0), never_busy_half).unwrap();
        let sys = b.build().unwrap();
        let combined = sys.combined_trace();
        // First half: both vulnerable -> 1. Second half: only "hot" (3/4).
        assert!((combined.vulnerability_at(100) - 1.0).abs() < 1e-12);
        assert!((combined.vulnerability_at(700) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn offsets_desynchronize_idle_windows() {
        let mut b = SystemModel::builder(Frequency::base());
        b.add_with_offsets("cpu", RawErrorRate::per_year(1.0), day_like(), &[0, 500]).unwrap();
        let sys = b.build().unwrap();
        let combined = sys.combined_trace();
        // At any cycle exactly one of the two replicas is busy.
        for c in [0u64, 250, 499, 500, 750, 999] {
            assert!((combined.vulnerability_at(c) - 0.5).abs() < 1e-12, "cycle {c}");
        }
        assert_eq!(sys.parts().len(), 2);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = SystemModel::builder(Frequency::base());
        assert!(b.add("z", RawErrorRate::ZERO, day_like()).is_err());
        assert!(b.add_replicated("m", RawErrorRate::per_year(1.0), day_like(), 0).is_err());
        assert!(b.build().is_err()); // empty
        b.add("ok", RawErrorRate::per_year(1.0), day_like()).unwrap();
        let other_period = Arc::new(IntervalTrace::busy_idle(3, 3).unwrap());
        assert!(b.add("bad", RawErrorRate::per_year(1.0), other_period).is_err());
        assert!(b.build().is_ok());
    }
}
