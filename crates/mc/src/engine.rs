//! The parallel Monte Carlo driver.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serr_numeric::stats::{RunningStats, Summary};
use serr_trace::VulnerabilityTrace;
use serr_types::{Frequency, Mttf, RawErrorRate, SerrError};

use crate::config::StartPhase;
use crate::sampler::sample_time_to_failure;
use crate::system::SystemModel;
use crate::MonteCarloConfig;

/// A Monte Carlo MTTF estimate with sampling diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttfEstimate {
    /// The estimated mean time to failure.
    pub mttf: Mttf,
    /// Sample statistics of the time-to-failure distribution, in seconds.
    pub ttf_seconds: Summary,
    /// Mean raw-error events consumed per trial.
    pub mean_events_per_trial: f64,
}

impl MttfEstimate {
    /// Relative half-width of the 95% confidence interval on the MTTF.
    #[must_use]
    pub fn relative_ci95(&self) -> f64 {
        self.ttf_seconds.ci95 / self.ttf_seconds.mean
    }
}

/// The Monte Carlo engine: owns a configuration, runs trials in parallel,
/// and reports MTTF estimates with confidence intervals.
///
/// Results are deterministic for a given `(config.seed, trials)` regardless
/// of thread count: each trial's RNG stream is derived from the seed and the
/// trial index.
#[derive(Debug, Clone, Default)]
pub struct MonteCarlo {
    config: MonteCarloConfig,
}

impl MonteCarlo {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: MonteCarloConfig) -> Self {
        MonteCarlo { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Estimates the MTTF of a single component with raw error rate `rate`
    /// running `trace` at `freq` — the ground truth against which the AVF
    /// step is judged.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for a zero rate or zero trials,
    /// [`SerrError::InvalidTrace`] for an AVF-0 trace, and propagates a
    /// trial that exceeds the per-trial event cap.
    pub fn component_mttf(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        freq: Frequency,
    ) -> Result<MttfEstimate, SerrError> {
        self.validate(trace, rate)?;
        let lambda_cycle = rate.per_second_value() / freq.hz();
        self.run(trace, lambda_cycle, freq)
    }

    /// Estimates the MTTF of a whole system — the ground truth against which
    /// the SOFR step is judged. See [`SystemModel`] for construction.
    ///
    /// # Errors
    ///
    /// As for [`MonteCarlo::component_mttf`].
    pub fn system_mttf(&self, system: &SystemModel) -> Result<MttfEstimate, SerrError> {
        let trace = system.combined_trace();
        let rate = system.total_rate();
        self.validate(&trace, rate)?;
        let lambda_cycle = rate.per_second_value() / system.frequency().hz();
        self.run(&trace, lambda_cycle, system.frequency())
    }

    /// Draws `n` raw time-to-failure samples (in seconds) for distribution
    /// analysis — e.g. Kolmogorov–Smirnov tests of the SOFR exponentiality
    /// assumption.
    ///
    /// # Errors
    ///
    /// As for [`MonteCarlo::component_mttf`].
    pub fn sample_ttfs(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        freq: Frequency,
        n: u64,
    ) -> Result<Vec<f64>, SerrError> {
        self.validate(trace, rate)?;
        let lambda_cycle = rate.per_second_value() / freq.hz();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let period = trace.period_cycles() as f64;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let phase = match self.config.start_phase {
                StartPhase::WorkloadStart => 0.0,
                StartPhase::Stationary => rng.gen_range(0.0..period),
            };
            let t = sample_time_to_failure(
                trace,
                lambda_cycle,
                self.config.max_events_per_trial,
                &mut rng,
                phase,
            )?;
            out.push(t.ttf_cycles / freq.hz());
        }
        Ok(out)
    }

    fn validate(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
    ) -> Result<(), SerrError> {
        if self.config.trials == 0 {
            return Err(SerrError::invalid_config("trial count must be positive"));
        }
        if rate.is_zero() {
            return Err(SerrError::invalid_config("raw error rate is zero; MTTF is infinite"));
        }
        if trace.is_never_vulnerable() {
            return Err(SerrError::invalid_trace(
                "trace has AVF = 0; the component can never fail",
            ));
        }
        Ok(())
    }

    fn run(
        &self,
        trace: &dyn VulnerabilityTrace,
        lambda_cycle: f64,
        freq: Frequency,
    ) -> Result<MttfEstimate, SerrError> {
        let threads = self.config.effective_threads().min(self.config.trials.max(1) as usize);
        let trials = self.config.trials;
        let per_thread = trials / threads as u64;
        let remainder = trials % threads as u64;
        let cap = self.config.max_events_per_trial;
        let seed = self.config.seed;
        let start_phase = self.config.start_phase;
        let period = trace.period_cycles() as f64;

        let results: Vec<Result<(RunningStats, u64), SerrError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|tid| {
                        let my_trials = per_thread + u64::from((tid as u64) < remainder);
                        // Deterministic per-thread stream: SplitMix-style
                        // decorrelation of the base seed.
                        let my_seed = seed
                            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid as u64 + 1));
                        scope.spawn(move || {
                            let mut rng = SmallRng::seed_from_u64(my_seed);
                            let mut stats = RunningStats::new();
                            let mut events = 0u64;
                            for _ in 0..my_trials {
                                let phase = match start_phase {
                                    StartPhase::WorkloadStart => 0.0,
                                    StartPhase::Stationary => rng.gen_range(0.0..period),
                                };
                                let t = sample_time_to_failure(
                                    trace,
                                    lambda_cycle,
                                    cap,
                                    &mut rng,
                                    phase,
                                )?;
                                stats.push(t.ttf_cycles);
                                events += t.events;
                            }
                            Ok((stats, events))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });

        let mut stats = RunningStats::new();
        let mut total_events = 0u64;
        for r in results {
            let (s, e) = r?;
            stats.merge(&s);
            total_events += e;
        }

        // Convert cycle statistics to seconds.
        let hz = freq.hz();
        let summary = Summary {
            count: stats.count(),
            mean: stats.mean() / hz,
            std_dev: stats.sample_variance().sqrt() / hz,
            ci95: stats.ci95_half_width() / hz,
            min: stats.min() / hz,
            max: stats.max() / hz,
        };
        Ok(MttfEstimate {
            mttf: Mttf::from_secs(summary.mean),
            ttf_seconds: summary,
            mean_events_per_trial: total_events as f64 / trials as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn fast_engine() -> MonteCarlo {
        MonteCarlo::new(MonteCarloConfig { trials: 40_000, ..Default::default() })
    }

    #[test]
    fn component_matches_renewal_truth() {
        let trace = IntervalTrace::busy_idle(40, 60).unwrap();
        let freq = Frequency::base();
        // λL ≈ 0.5 at this rate: a regime with real AVF error.
        let rate = RawErrorRate::per_second(0.005 * freq.hz() / 100.0);
        let est = fast_engine().component_mttf(&trace, rate, freq).unwrap();
        let truth =
            serr_analytic::renewal::renewal_mttf(&trace, rate, freq).unwrap().as_secs();
        let err = (est.mttf.as_secs() - truth).abs() / truth;
        assert!(err < 0.02, "MC {} vs renewal {truth}: {err}", est.mttf.as_secs());
        assert!(est.relative_ci95() < 0.02);
        assert!(est.mean_events_per_trial >= 1.0);
    }

    #[test]
    fn deterministic_across_thread_counts_with_one_thread() {
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let cfg = MonteCarloConfig { trials: 5_000, threads: 1, ..Default::default() };
        let a = MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()).unwrap();
        let b = MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()).unwrap();
        assert_eq!(a.mttf.as_secs(), b.mttf.as_secs());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let dead = IntervalTrace::constant(10, 0.0).unwrap();
        let live = IntervalTrace::constant(10, 1.0).unwrap();
        let engine = fast_engine();
        assert!(engine
            .component_mttf(&dead, RawErrorRate::per_year(1.0), Frequency::base())
            .is_err());
        assert!(engine.component_mttf(&live, RawErrorRate::ZERO, Frequency::base()).is_err());
        let zero_trials = MonteCarlo::new(MonteCarloConfig { trials: 0, ..Default::default() });
        assert!(zero_trials
            .component_mttf(&live, RawErrorRate::per_year(1.0), Frequency::base())
            .is_err());
    }

    #[test]
    fn sampled_ttfs_are_exponential_in_avf_regime() {
        // SOFR's assumption holds when λL -> 0: KS test against Exp(λ·AVF).
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let freq = Frequency::base();
        let rate = RawErrorRate::per_year(20.0); // λL astronomically small
        let engine = fast_engine();
        let samples = engine.sample_ttfs(&trace, rate, freq, 4_000).unwrap();
        let ecdf = serr_numeric::ecdf::Ecdf::new(samples);
        let eff_rate = rate.per_second_value() * 0.3;
        let d = ecdf.ks_vs_exponential(eff_rate);
        assert!(
            d < serr_numeric::ecdf::ks_critical_value(4_000, 0.01),
            "KS {d} rejects exponentiality in the valid regime"
        );
    }

    #[test]
    fn estimate_summary_is_consistent() {
        let trace = IntervalTrace::constant(100, 1.0).unwrap();
        let est = fast_engine()
            .component_mttf(&trace, RawErrorRate::per_year(1.0), Frequency::base())
            .unwrap();
        assert_eq!(est.ttf_seconds.count, 40_000);
        assert!(est.ttf_seconds.min >= 0.0);
        assert!(est.ttf_seconds.max > est.ttf_seconds.mean);
        assert!((est.mttf.as_secs() - est.ttf_seconds.mean).abs() < 1e-12);
        // Fully vulnerable -> exactly one event per trial.
        assert_eq!(est.mean_events_per_trial, 1.0);
    }
}
