//! The parallel Monte Carlo driver.
//!
//! # Determinism contract
//!
//! Results are **bit-identical** for a given `(config.seed, config.trials)`
//! at any thread count. The trial space is split into fixed-size chunks of
//! [`TRIAL_CHUNK`] trials; chunk `j` seeds its own RNG with a SplitMix64
//! finalizer over `(seed, j)` — a pure counter-based derivation that never
//! looks at which worker thread runs the chunk. Workers pick up chunks
//! round-robin by index, and the main thread folds per-chunk statistics in
//! ascending chunk order, so the floating-point reduction order is fixed
//! too. (An earlier implementation derived streams from *thread* ids, which
//! silently broke this promise for `threads > 1`.)
//!
//! # Compiled hot path and sampler dispatch
//!
//! Before spawning workers, the engine lowers the trace into a
//! [`CompiledTrace`] (flat segments + bucketed `O(1)` phase index and a
//! bucketed inverse index over the prefix sums) and monomorphizes the
//! trial loop over the configured [`SamplerKind`]:
//!
//! * [`SamplerKind::BatchedInversion`] (the default) makes the whole
//!   chunk the unit of work: counter-based RNG words and branchless
//!   structure-of-arrays passes produce all [`TRIAL_CHUNK`] times to
//!   failure per dispatch — see [`crate::batched`];
//! * [`SamplerKind::Inversion`] draws each time to failure in O(1) by
//!   inverting the cumulative-vulnerability function through the compiled
//!   prefix table — see [`crate::inversion`] — kept as the scalar oracle;
//! * [`SamplerKind::EventLoop`] walks raw-error events one at a time (the
//!   paper's Appendix A decomposition) — kept as the cross-check oracle.
//!
//! Traces whose span structure is too large to flatten (see
//! [`VulnerabilityTrace::span_count_hint`]) transparently fall back to the
//! generic event loop over the original representation regardless of the
//! configured kind (the inversion sampler needs the compiled tables); the
//! sampler that actually ran is reported in [`MttfEstimate::sampler`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serr_numeric::stats::{RunningStats, Summary};
use serr_obs::{Event, Obs};
use serr_trace::{CompiledTrace, VulnerabilityTrace};
use serr_types::{Frequency, Mttf, RawErrorRate, SerrError};

use crate::batched::{BatchScratch, BatchedInversionSampler};
use crate::config::{SamplerKind, StartPhase};
use crate::inversion::sample_time_to_failure_inversion;
use crate::sampler::{sample_time_to_failure, TrialOutcome};
use crate::system::SystemModel;
use crate::MonteCarloConfig;

/// Trials per deterministic RNG chunk. Small enough that a 20,000-trial
/// smoke run still spreads across cores, large enough that per-chunk
/// scheduling overhead vanishes against millions of raw-error events.
pub(crate) const TRIAL_CHUNK: u64 = 1024;

/// Counter-based per-chunk stream derivation: a SplitMix64 finalizer over
/// the `(seed, chunk)` pair. Depends only on the chunk *index*, never on
/// the thread that executes it — the root of the determinism contract.
pub(crate) fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed.wrapping_add(chunk.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The single wall-clock deadline test shared by the pre-run gate and the
/// between-chunks check, so the two paths cannot drift (PR 3 fixed exactly
/// such a drift). Semantics:
///
/// * no deadline configured → never expired;
/// * once any caller has observed expiry, the sticky `expired` flag makes
///   every later call answer `true` without consulting the clock — a
///   worker that races past an expiring clock can therefore never buy
///   another chunk after a peer has seen the deadline pass;
/// * otherwise the clock is consulted, and an elapsed budget (including a
///   zero budget, where `elapsed >= ZERO` holds trivially) sets the flag.
fn deadline_expired(
    started: &std::time::Instant,
    deadline: Option<std::time::Duration>,
    expired: &std::sync::atomic::AtomicBool,
) -> bool {
    use std::sync::atomic::Ordering;
    let Some(limit) = deadline else {
        return false;
    };
    if expired.load(Ordering::Relaxed) {
        return true;
    }
    if started.elapsed() >= limit {
        expired.store(true, Ordering::Relaxed);
        return true;
    }
    false
}

/// Renders a panic payload for the typed worker-fault error, mirroring the
/// helper in `serr-core::par` (the two crates cannot share it without a
/// dependency cycle).
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Assembles an [`MttfEstimate`] from cycle-domain statistics folded in
/// ascending chunk order — the one place the cycles → seconds conversion
/// lives, shared by the single-point run and the sweep kernel so the two
/// paths cannot round differently.
pub(crate) fn estimate_from_cycle_stats(
    stats: &RunningStats,
    hz: f64,
    total_events: u64,
    truncated: bool,
    sampler: SamplerKind,
) -> MttfEstimate {
    let completed = stats.count();
    let summary = Summary {
        count: completed,
        mean: stats.mean() / hz,
        std_dev: stats.sample_variance().sqrt() / hz,
        ci95: stats.ci95_half_width() / hz,
        min: stats.min() / hz,
        max: stats.max() / hz,
    };
    MttfEstimate {
        mttf: Mttf::from_secs(summary.mean),
        ttf_seconds: summary,
        mean_events_per_trial: total_events as f64 / completed as f64,
        truncated,
        sampler,
    }
}

/// Everything one chunk of trials produces.
struct ChunkOutcome {
    stats: RunningStats,
    events: u64,
    /// Raw per-trial TTFs in cycles, populated only when the caller asked
    /// for samples.
    ttfs: Vec<f64>,
}

/// A Monte Carlo MTTF estimate with sampling diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttfEstimate {
    /// The estimated mean time to failure.
    pub mttf: Mttf,
    /// Sample statistics of the time-to-failure distribution, in seconds.
    pub ttf_seconds: Summary,
    /// Mean raw-error events consumed per trial.
    pub mean_events_per_trial: f64,
    /// Whether a configured [`deadline`](crate::MonteCarloConfig::deadline)
    /// cut the run short. A truncated estimate averages only the trials
    /// completed before the deadline (`ttf_seconds.count` of them); its
    /// confidence interval is honestly wider than the full run's would be.
    pub truncated: bool,
    /// The sampler that actually produced the trials. Normally the
    /// configured [`MonteCarloConfig::sampler`]; a trace too large to
    /// compile downgrades either inversion kind to `EventLoop` (both read
    /// the compiled prefix table).
    pub sampler: SamplerKind,
}

impl MttfEstimate {
    /// Relative half-width of the 95% confidence interval on the MTTF.
    #[must_use]
    pub fn relative_ci95(&self) -> f64 {
        self.ttf_seconds.ci95 / self.ttf_seconds.mean
    }
}

/// The Monte Carlo engine: owns a configuration, runs trials in parallel,
/// and reports MTTF estimates with confidence intervals.
///
/// Results are deterministic for a given `(config.seed, trials)` regardless
/// of thread count: RNG streams are derived per fixed-size trial *chunk*
/// from `(seed, chunk index)` and per-chunk results are folded in chunk
/// order — see the [module docs](self) for the scheme and the
/// `deterministic_across_thread_counts` test for the bit-equality check.
#[derive(Debug, Clone, Default)]
pub struct MonteCarlo {
    pub(crate) config: MonteCarloConfig,
    /// Optional observability handle. Telemetry is strictly read-only over
    /// the already-folded results: convergence events are emitted from the
    /// deterministic chunk-order fold on the main thread, so attaching an
    /// observer cannot perturb estimates or their thread-count invariance.
    pub(crate) obs: Option<Obs>,
}

impl MonteCarlo {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: MonteCarloConfig) -> Self {
        MonteCarlo { config, obs: None }
    }

    /// Attaches an observability handle. The engine then records per-stage
    /// wall time (`stage.trace_compile_ms`, `stage.mc_run_ms`), chunk /
    /// trial / raw-event counters, a samples-per-second gauge, and emits
    /// one `mc.chunk` convergence event per completed chunk (running mean
    /// and CI half-width after folding that chunk, keyed by chunk index).
    #[must_use]
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Estimates the MTTF of a single component with raw error rate `rate`
    /// running `trace` at `freq` — the ground truth against which the AVF
    /// step is judged.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for a zero rate or zero trials,
    /// [`SerrError::InvalidTrace`] for an AVF-0 trace, and propagates a
    /// trial that exceeds the per-trial event cap.
    pub fn component_mttf(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        freq: Frequency,
    ) -> Result<MttfEstimate, SerrError> {
        self.validate(trace, rate)?;
        let lambda_cycle = rate.per_second_value() / freq.hz();
        self.run(trace, lambda_cycle, freq)
    }

    /// Estimates the MTTF of a whole system — the ground truth against which
    /// the SOFR step is judged. See [`SystemModel`] for construction.
    ///
    /// # Errors
    ///
    /// As for [`MonteCarlo::component_mttf`].
    pub fn system_mttf(&self, system: &SystemModel) -> Result<MttfEstimate, SerrError> {
        let trace = system.combined_trace();
        let rate = system.total_rate();
        self.validate(&trace, rate)?;
        let lambda_cycle = rate.per_second_value() / system.frequency().hz();
        self.run(&trace, lambda_cycle, system.frequency())
    }

    /// Draws `n` raw time-to-failure samples (in seconds) for distribution
    /// analysis — e.g. Kolmogorov–Smirnov tests of the SOFR exponentiality
    /// assumption.
    ///
    /// Shares the compiled-trace chunked trial loop with
    /// [`MonteCarlo::component_mttf`]: it honors `config.threads`, and the
    /// returned sample vector is in deterministic trial order (chunk-major)
    /// for any thread count.
    ///
    /// # Errors
    ///
    /// As for [`MonteCarlo::component_mttf`].
    pub fn sample_ttfs(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        freq: Frequency,
        n: u64,
    ) -> Result<Vec<f64>, SerrError> {
        self.validate(trace, rate)?;
        let lambda_cycle = rate.per_second_value() / freq.hz();
        let engine = MonteCarlo::new(MonteCarloConfig { trials: n, ..self.config });
        let compiled = CompiledTrace::compile(trace);
        let (chunks, _truncated, _sampler) =
            engine.run_sampler(trace, compiled.as_ref(), lambda_cycle, true)?;
        let hz = freq.hz();
        Ok(chunks.into_iter().flat_map(|(_, c)| c.ttfs).map(|t| t / hz).collect())
    }

    fn validate(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
    ) -> Result<(), SerrError> {
        self.config.validate()?;
        if rate.is_zero() {
            return Err(SerrError::invalid_config("raw error rate is zero; MTTF is infinite"));
        }
        if trace.is_never_vulnerable() {
            return Err(SerrError::invalid_trace(
                "trace has AVF = 0; the component can never fail",
            ));
        }
        Ok(())
    }

    fn run(
        &self,
        trace: &dyn VulnerabilityTrace,
        lambda_cycle: f64,
        freq: Frequency,
    ) -> Result<MttfEstimate, SerrError> {
        // Compile once; every worker then runs the monomorphized loop with
        // O(1) trace lookups and no virtual dispatch. Falls back to the
        // generic loop for traces too large to flatten.
        let t_compile = std::time::Instant::now();
        let compiled = CompiledTrace::compile(trace);
        if let Some(obs) = &self.obs {
            obs.record_stage("trace_compile", t_compile.elapsed().as_secs_f64() * 1e3);
        }
        let t_run = std::time::Instant::now();
        let (chunks, truncated, sampler) =
            self.run_sampler(trace, compiled.as_ref(), lambda_cycle, false)?;

        // Fold in ascending chunk order: the reduction order (and thus the
        // result, bit for bit) is independent of the thread count. The
        // per-chunk convergence snapshots ride on this fold — emitted from
        // the main thread in chunk order and keyed by chunk index, they are
        // byte-identical at any thread count.
        let hz = freq.hz();
        let mut stats = RunningStats::new();
        let mut total_events = 0u64;
        for (chunk, c) in &chunks {
            stats.merge(&c.stats);
            total_events += c.events;
            if let Some(obs) = &self.obs {
                obs.emit(
                    Event::new("mc.chunk", *chunk)
                        .with("chunk", *chunk)
                        .with("n", stats.count())
                        .with("mean_s", stats.mean() / hz)
                        .with("ci95_s", stats.ci95_half_width() / hz),
                );
            }
        }

        // Convert cycle statistics to seconds. Normalize events by the
        // trials that actually ran — under a deadline that is fewer than
        // `config.trials`.
        let completed = stats.count();
        if let Some(obs) = &self.obs {
            let secs = t_run.elapsed().as_secs_f64();
            obs.record_stage("mc_run", secs * 1e3);
            let metrics = obs.metrics();
            metrics.add("mc.runs", 1);
            metrics.add(
                match sampler {
                    SamplerKind::EventLoop => "mc.runs_event_loop",
                    SamplerKind::Inversion => "mc.runs_inversion",
                    SamplerKind::BatchedInversion => "mc.runs_batched_inversion",
                },
                1,
            );
            metrics.add("mc.rng_chunks", chunks.len() as u64);
            metrics.add("mc.trials_completed", completed);
            metrics.add("mc.raw_error_events", total_events);
            if truncated {
                metrics.add("mc.truncated_runs", 1);
            }
            if secs > 0.0 {
                metrics.set_gauge("mc.samples_per_sec", completed as f64 / secs);
            }
        }
        Ok(estimate_from_cycle_stats(&stats, hz, total_events, truncated, sampler))
    }

    /// Dispatches the configured [`SamplerKind`] over the compiled (or
    /// generic) trace and runs the chunked trial loop, monomorphizing it
    /// over the per-trial closure. Returns the chunk outcomes, the
    /// truncation flag, and the sampler that actually ran: a trace too
    /// large to compile falls back to the generic event loop regardless of
    /// the configured kind, since the inversion sampler reads the compiled
    /// prefix table.
    fn run_sampler(
        &self,
        trace: &dyn VulnerabilityTrace,
        compiled: Option<&CompiledTrace>,
        lambda_cycle: f64,
        collect_samples: bool,
    ) -> Result<(Vec<(u64, ChunkOutcome)>, bool, SamplerKind), SerrError> {
        let cap = self.config.max_events_per_trial;
        match (compiled, self.config.sampler) {
            (Some(c), SamplerKind::BatchedInversion) => {
                // Chunk-at-a-time path: the sampler consumes its own
                // versioned counter-RNG stream derived from the same
                // `chunk_seed(seed, chunk)` values, so the determinism
                // contract (bit-identical at any thread count) holds by the
                // same argument as the per-trial path. `StartPhase` is
                // resolved inside the batched kernels — the stationary
                // variant draws its phase plane from the counter stream.
                let sampler =
                    BatchedInversionSampler::new(c, lambda_cycle, self.config.start_phase);
                let seed = self.config.seed;
                let (chunks, truncated) =
                    self.run_chunks_scaffold(BatchScratch::new, |scratch, chunk, n| {
                        let (ttfs, stats) = sampler.sample_chunk_with_stats(
                            scratch,
                            chunk_seed(seed, chunk),
                            n as usize,
                        );
                        Ok(ChunkOutcome {
                            stats,
                            // Like the scalar inversion sampler: one
                            // raw-error event (the failing one) per trial.
                            events: n,
                            ttfs: if collect_samples { ttfs.to_vec() } else { Vec::new() },
                        })
                    })?;
                Ok((chunks, truncated, SamplerKind::BatchedInversion))
            }
            (Some(c), SamplerKind::Inversion) => {
                let (chunks, truncated) =
                    self.run_chunks(c.period_cycles(), collect_samples, |rng, phase| {
                        Ok(sample_time_to_failure_inversion(c, lambda_cycle, rng, phase))
                    })?;
                Ok((chunks, truncated, SamplerKind::Inversion))
            }
            (Some(c), SamplerKind::EventLoop) => {
                let (chunks, truncated) =
                    self.run_chunks(c.period_cycles(), collect_samples, |rng, phase| {
                        sample_time_to_failure(c, lambda_cycle, cap, rng, phase)
                    })?;
                Ok((chunks, truncated, SamplerKind::EventLoop))
            }
            (None, _) => {
                let (chunks, truncated) =
                    self.run_chunks(trace.period_cycles(), collect_samples, |rng, phase| {
                        sample_time_to_failure(trace, lambda_cycle, cap, rng, phase)
                    })?;
                Ok((chunks, truncated, SamplerKind::EventLoop))
            }
        }
    }

    /// The per-trial loop over [`run_chunks_scaffold`]: one chunk-seeded
    /// `SmallRng` per chunk, one closure call per trial. Monomorphized over
    /// the per-trial closure so each sampler's fast path inlines end to
    /// end; the `StartPhase` draw lives here exactly once, *before* the
    /// trial call, so every per-trial sampler sees the identical phase
    /// stream.
    ///
    /// [`run_chunks_scaffold`]: MonteCarlo::run_chunks_scaffold
    fn run_chunks<F>(
        &self,
        period_cycles: u64,
        collect_samples: bool,
        trial: F,
    ) -> Result<(Vec<(u64, ChunkOutcome)>, bool), SerrError>
    where
        F: Fn(&mut SmallRng, f64) -> Result<TrialOutcome, SerrError> + Sync,
    {
        let seed = self.config.seed;
        let start_phase = self.config.start_phase;
        let period = period_cycles as f64;
        self.run_chunks_scaffold(
            || (),
            |(), chunk, n| {
                let mut rng = SmallRng::seed_from_u64(chunk_seed(seed, chunk));
                let mut stats = RunningStats::new();
                let mut events = 0u64;
                let mut ttfs = Vec::with_capacity(if collect_samples { n as usize } else { 0 });
                for _ in 0..n {
                    // The `StartPhase` draw must stay *before* the trial
                    // call so every per-trial sampler sees the identical
                    // phase stream.
                    let phase = match start_phase {
                        StartPhase::WorkloadStart => 0.0,
                        StartPhase::Stationary => rng.gen_range(0.0..period),
                    };
                    let t = trial(&mut rng, phase)?;
                    stats.push(t.ttf_cycles);
                    events += t.events;
                    if collect_samples {
                        ttfs.push(t.ttf_cycles);
                    }
                }
                Ok(ChunkOutcome { stats, events, ttfs })
            },
        )
    }

    /// The chunk scaffolding shared by the per-trial and batched paths:
    /// claims chunks round-robin by index across workers, honors real and
    /// injected deadlines at chunk boundaries, maps worker panics to the
    /// typed engine fault, and returns outcomes sorted by chunk index.
    /// `scratch_init` runs once per worker (the batched sampler reuses its
    /// structure-of-arrays buffers across every chunk a worker claims);
    /// `chunk_body(scratch, chunk, n)` produces the outcome of `n` trials
    /// on chunk `chunk`'s deterministic stream.
    ///
    /// Deadline semantics: the budget is checked at chunk boundaries only —
    /// a chunk that has started always finishes, and every worker completes
    /// at least its *first* chunk, so a truncated run still contains at
    /// least [`TRIAL_CHUNK`] trials per worker and the estimate is never
    /// empty. Because each chunk's stream depends only on its index, the
    /// truncated result is still a deterministic function of *which* chunks
    /// completed (e.g. a zero deadline with one thread always yields
    /// exactly chunk 0).
    pub(crate) fn run_chunks_scaffold<S, I, G, O>(
        &self,
        scratch_init: I,
        chunk_body: G,
    ) -> Result<(Vec<(u64, O)>, bool), SerrError>
    where
        I: Fn() -> S + Sync,
        G: Fn(&mut S, u64, u64) -> Result<O, SerrError> + Sync,
        O: Send,
    {
        let trials = self.config.trials;
        let n_chunks = trials.div_ceil(TRIAL_CHUNK);
        let threads = self.config.effective_threads().min(n_chunks.max(1) as usize).max(1);
        let seed = self.config.seed;
        let deadline = self.config.deadline;
        let chaos = self.config.chaos;
        let started = std::time::Instant::now();
        let expired = std::sync::atomic::AtomicBool::new(false);

        // A budget that is already spent buys zero chunks: fail fast with
        // the typed error instead of burning one full chunk per worker on a
        // deadline that has no time left in it. Same predicate as the
        // between-chunks check below (a zero budget trips `elapsed >= limit`
        // trivially), so the two paths cannot disagree about what "expired"
        // means.
        if deadline_expired(&started, deadline, &expired) {
            let budget_s = deadline.map_or(0.0, |d| d.as_secs_f64());
            return Err(SerrError::DeadlineExhausted {
                budget_s,
                elapsed_s: started.elapsed().as_secs_f64(),
            });
        }
        // Injected deadline exhaustion at chunk 0 models the same condition.
        if chaos.and_then(|p| p.deadline_cut_chunk()) == Some(0) {
            return Err(SerrError::DeadlineExhausted {
                budget_s: deadline.map_or(0.0, |d| d.as_secs_f64()),
                elapsed_s: started.elapsed().as_secs_f64(),
            });
        }
        let worker = |tid: usize| -> Result<Vec<(u64, O)>, SerrError> {
            let mut scratch = scratch_init();
            let mut out = Vec::new();
            let mut chunk = tid as u64;
            let mut first = true;
            while chunk < n_chunks {
                // Injected deadline cut: unlike the wall-clock budget this
                // keys on the chunk *index*, so the completed set {0..k} is
                // identical at any thread count.
                if let Some(k) = chaos.and_then(|p| p.deadline_cut_chunk()) {
                    if chunk >= k {
                        break;
                    }
                }
                // Honor the wall-clock budget between chunks (never
                // mid-chunk), but always run the first claimed chunk. Same
                // `deadline_expired` predicate as the pre-run gate; its
                // sticky flag means that once any worker observes expiry,
                // no worker — including one that raced past the clock
                // check — buys another chunk.
                if !first && deadline_expired(&started, deadline, &expired) {
                    break;
                }
                first = false;
                if let Some(plan) = chaos {
                    if plan.chunk_panics(seed, chunk) {
                        panic!("chaos: injected panic in chunk {chunk}");
                    }
                }
                let lo = chunk * TRIAL_CHUNK;
                let hi = (lo + TRIAL_CHUNK).min(trials);
                out.push((chunk, chunk_body(&mut scratch, chunk, hi - lo)?));
                chunk += threads as u64;
            }
            Ok(out)
        };

        // A panicking worker — injected or genuine — must surface as a typed
        // error, never tear down the caller: catch the unwind on the
        // single-thread path and map scope-join failures on the parallel one.
        let gathered: Vec<Result<Vec<(u64, O)>, SerrError>> = if threads == 1 {
            vec![std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(0)))
                .unwrap_or_else(|p| {
                    Err(SerrError::engine_fault("monte carlo worker", panic_payload_string(&*p)))
                })]
        } else {
            std::thread::scope(|scope| {
                let worker = &worker;
                let handles: Vec<_> =
                    (0..threads).map(|tid| scope.spawn(move || worker(tid))).collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|p| {
                            Err(SerrError::engine_fault(
                                "monte carlo worker",
                                panic_payload_string(&*p),
                            ))
                        })
                    })
                    .collect()
            })
        };

        // Under a deadline the completed set can be any subset that contains
        // each worker's first chunk; sort so the fold order stays ascending
        // by chunk index regardless of which worker finished what.
        let mut completed: Vec<(u64, O)> = Vec::with_capacity(n_chunks as usize);
        for res in gathered {
            completed.extend(res?);
        }
        completed.sort_unstable_by_key(|&(chunk, _)| chunk);
        let truncated = (completed.len() as u64) < n_chunks;
        debug_assert!(
            deadline.is_some() || chaos.is_some() || !truncated,
            "chunks can only go missing when a deadline (real or injected) expires"
        );
        // Chunk indices ride along so the caller's fold can key convergence
        // telemetry deterministically.
        Ok((completed, truncated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn fast_engine() -> MonteCarlo {
        MonteCarlo::new(MonteCarloConfig { trials: 40_000, ..Default::default() })
    }

    #[test]
    fn component_matches_renewal_truth() {
        let trace = IntervalTrace::busy_idle(40, 60).unwrap();
        let freq = Frequency::base();
        // λL ≈ 0.5 at this rate: a regime with real AVF error.
        let rate = RawErrorRate::per_second(0.005 * freq.hz() / 100.0);
        let est = fast_engine().component_mttf(&trace, rate, freq).unwrap();
        let truth = serr_analytic::renewal::renewal_mttf(&trace, rate, freq).unwrap().as_secs();
        let err = (est.mttf.as_secs() - truth).abs() / truth;
        assert!(err < 0.02, "MC {} vs renewal {truth}: {err}", est.mttf.as_secs());
        assert!(est.relative_ci95() < 0.02);
        assert!(est.mean_events_per_trial >= 1.0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The real contract: bit-identical estimates at different thread
        // counts for a fixed (seed, trials). 5,000 trials span several RNG
        // chunks, so 4 workers genuinely interleave.
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let one = MonteCarloConfig { trials: 5_000, threads: 1, ..Default::default() };
        let four = MonteCarloConfig { threads: 4, ..one };
        let a = MonteCarlo::new(one).component_mttf(&trace, rate, Frequency::base()).unwrap();
        let b = MonteCarlo::new(four).component_mttf(&trace, rate, Frequency::base()).unwrap();
        assert_eq!(a, b);
        // Repeat runs are stable too.
        let c = MonteCarlo::new(four).component_mttf(&trace, rate, Frequency::base()).unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn deterministic_across_thread_counts_fractional_and_stationary() {
        // Fractional vulnerabilities exercise the Bernoulli masking draw and
        // the stationary start draws a per-trial phase — both consume RNG on
        // the chunk stream and must not disturb cross-thread determinism.
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let one = MonteCarloConfig {
            trials: 4_000,
            threads: 1,
            start_phase: crate::StartPhase::Stationary,
            ..Default::default()
        };
        let three = MonteCarloConfig { threads: 3, ..one };
        let a = MonteCarlo::new(one).component_mttf(&trace, rate, Frequency::base()).unwrap();
        let b = MonteCarlo::new(three).component_mttf(&trace, rate, Frequency::base()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_samplers_are_deterministic_across_thread_counts() {
        let trace =
            IntervalTrace::from_levels(&[1.0, 0.25, 0.25, 0.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        for sampler in
            [SamplerKind::EventLoop, SamplerKind::Inversion, SamplerKind::BatchedInversion]
        {
            for start_phase in [StartPhase::WorkloadStart, StartPhase::Stationary] {
                let one = MonteCarloConfig {
                    trials: 4_000,
                    threads: 1,
                    sampler,
                    start_phase,
                    ..Default::default()
                };
                let four = MonteCarloConfig { threads: 4, ..one };
                let a =
                    MonteCarlo::new(one).component_mttf(&trace, rate, Frequency::base()).unwrap();
                let b =
                    MonteCarlo::new(four).component_mttf(&trace, rate, Frequency::base()).unwrap();
                assert_eq!(a, b, "{sampler:?}/{start_phase:?} not thread-count invariant");
                assert_eq!(a.sampler, sampler);
            }
        }
    }

    #[test]
    fn samplers_agree_within_confidence_intervals() {
        // Same trace, same rate: the two samplers draw from the same
        // distribution (the full KS suite lives in
        // tests/sampler_equivalence.rs; this pins the engine wiring).
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rate = RawErrorRate::per_second(0.01 * Frequency::base().hz() / 100.0);
        let base = MonteCarloConfig { trials: 100_000, ..Default::default() };
        let inv = MonteCarlo::new(MonteCarloConfig { sampler: SamplerKind::Inversion, ..base })
            .component_mttf(&trace, rate, Frequency::base())
            .unwrap();
        let ev = MonteCarlo::new(MonteCarloConfig { sampler: SamplerKind::EventLoop, ..base })
            .component_mttf(&trace, rate, Frequency::base())
            .unwrap();
        let batched =
            MonteCarlo::new(MonteCarloConfig { sampler: SamplerKind::BatchedInversion, ..base })
                .component_mttf(&trace, rate, Frequency::base())
                .unwrap();
        for (label, other) in [("event-loop", &ev), ("batched-inversion", &batched)] {
            let gap = (inv.mttf.as_secs() - other.mttf.as_secs()).abs();
            let tol = 3.0 * (inv.ttf_seconds.ci95 + other.ttf_seconds.ci95);
            assert!(
                gap <= tol,
                "inversion {} vs {label} {}: gap {gap} > {tol}",
                inv.mttf.as_secs(),
                other.mttf.as_secs()
            );
        }
        // Both inversion samplers consume exactly one event per trial; the
        // event loop needs ~1/AVF (plus the λL-dependent correction).
        assert_eq!(inv.mean_events_per_trial, 1.0);
        assert_eq!(batched.mean_events_per_trial, 1.0);
        assert!(ev.mean_events_per_trial > 2.0, "events {}", ev.mean_events_per_trial);
        assert_eq!(inv.sampler, SamplerKind::Inversion);
        assert_eq!(ev.sampler, SamplerKind::EventLoop);
        assert_eq!(batched.sampler, SamplerKind::BatchedInversion);
    }

    #[test]
    fn uncompilable_trace_falls_back_to_event_loop() {
        use std::sync::Arc;
        // A tiled trace whose expansion exceeds the compiler's segment cap:
        // the engine must downgrade Inversion to the generic event loop and
        // say so in the estimate.
        let unit: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(3, 5).unwrap());
        let tiled = serr_trace::ConcatTrace::new(vec![(unit, 10_000_000)]).unwrap();
        assert!(CompiledTrace::compile(&tiled).is_none());
        let cfg = MonteCarloConfig { trials: 2_000, ..Default::default() };
        assert_eq!(cfg.sampler, SamplerKind::BatchedInversion);
        let est = MonteCarlo::new(cfg)
            .component_mttf(&tiled, RawErrorRate::per_year(1000.0), Frequency::base())
            .unwrap();
        assert_eq!(est.sampler, SamplerKind::EventLoop);
        assert!(est.mean_events_per_trial >= 1.0);
    }

    #[test]
    fn sample_ttfs_deterministic_and_threaded() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rate = RawErrorRate::per_year(20.0);
        let one = MonteCarlo::new(MonteCarloConfig { threads: 1, ..Default::default() });
        let four = MonteCarlo::new(MonteCarloConfig { threads: 4, ..Default::default() });
        let a = one.sample_ttfs(&trace, rate, Frequency::base(), 3_000).unwrap();
        let b = four.sample_ttfs(&trace, rate, Frequency::base(), 3_000).unwrap();
        assert_eq!(a.len(), 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let dead = IntervalTrace::constant(10, 0.0).unwrap();
        let live = IntervalTrace::constant(10, 1.0).unwrap();
        let engine = fast_engine();
        assert!(engine
            .component_mttf(&dead, RawErrorRate::per_year(1.0), Frequency::base())
            .is_err());
        assert!(engine.component_mttf(&live, RawErrorRate::ZERO, Frequency::base()).is_err());
        let zero_trials = MonteCarlo::new(MonteCarloConfig { trials: 0, ..Default::default() });
        assert!(zero_trials
            .component_mttf(&live, RawErrorRate::per_year(1.0), Frequency::base())
            .is_err());
    }

    #[test]
    fn sampled_ttfs_are_exponential_in_avf_regime() {
        // SOFR's assumption holds when λL -> 0: KS test against Exp(λ·AVF).
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let freq = Frequency::base();
        let rate = RawErrorRate::per_year(20.0); // λL astronomically small
        let engine = fast_engine();
        let samples = engine.sample_ttfs(&trace, rate, freq, 4_000).unwrap();
        let ecdf = serr_numeric::ecdf::Ecdf::new(samples).expect("TTF samples contain no NaN");
        let eff_rate = rate.per_second_value() * 0.3;
        let d = ecdf.ks_vs_exponential(eff_rate);
        assert!(
            d < serr_numeric::ecdf::ks_critical_value(4_000, 0.01),
            "KS {d} rejects exponentiality in the valid regime"
        );
    }

    #[test]
    fn estimate_summary_is_consistent() {
        let trace = IntervalTrace::constant(100, 1.0).unwrap();
        let est = fast_engine()
            .component_mttf(&trace, RawErrorRate::per_year(1.0), Frequency::base())
            .unwrap();
        assert_eq!(est.ttf_seconds.count, 40_000);
        assert!(est.ttf_seconds.min >= 0.0);
        assert!(est.ttf_seconds.max > est.ttf_seconds.mean);
        assert!((est.mttf.as_secs() - est.ttf_seconds.mean).abs() < 1e-12);
        // Fully vulnerable -> exactly one event per trial.
        assert_eq!(est.mean_events_per_trial, 1.0);
        assert!(!est.truncated);
    }

    #[test]
    fn exhausted_deadline_fails_before_the_first_chunk() {
        use std::time::Duration;
        // A deadline already in the past used to buy one full chunk per
        // worker; now it fails immediately with the typed error.
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        for threads in [1usize, 4] {
            let cfg = MonteCarloConfig {
                trials: 40_960,
                threads,
                deadline: Some(Duration::ZERO),
                ..Default::default()
            };
            match MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()) {
                Err(SerrError::DeadlineExhausted { budget_s, elapsed_s }) => {
                    assert_eq!(budget_s, 0.0);
                    assert!(elapsed_s >= 0.0, "elapsed context must be populated");
                }
                other => panic!("expected DeadlineExhausted, got {other:?}"),
            }
        }
    }

    #[test]
    fn injected_deadline_cut_truncates_identically_at_any_thread_count() {
        use serr_inject::{FaultKind, FaultPlan};
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let freq = Frequency::base();
        let full_cfg = MonteCarloConfig { trials: 40_960, threads: 1, ..Default::default() };
        let full = MonteCarlo::new(full_cfg).component_mttf(&trace, rate, freq).unwrap();
        assert!(!full.truncated);
        assert_eq!(full.ttf_seconds.count, 40_960);

        // An injected cut at chunk 2 completes exactly chunks {0, 1} no
        // matter how many workers race for them.
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, FaultKind::DeadlineExhaust))
            .find(|p| p.deadline_cut_chunk() == Some(2))
            .expect("some seed cuts at chunk 2");
        let cut_cfg = MonteCarloConfig { chaos: Some(plan), ..full_cfg };
        let cut = MonteCarlo::new(cut_cfg).component_mttf(&trace, rate, freq).unwrap();
        assert!(cut.truncated);
        assert_eq!(cut.ttf_seconds.count, 2_048);
        assert!(cut.mean_events_per_trial >= 1.0);
        // Honestly wider CI than the full run, and the partial mean still
        // covers it (chunks {0,1} are a subset of the full run's trials).
        assert!(cut.ttf_seconds.ci95 > full.ttf_seconds.ci95);
        let diff = (cut.ttf_seconds.mean - full.ttf_seconds.mean).abs();
        assert!(
            diff <= 2.0 * cut.ttf_seconds.ci95,
            "partial mean {} +/- {} does not cover full-run mean {}",
            cut.ttf_seconds.mean,
            cut.ttf_seconds.ci95,
            full.ttf_seconds.mean
        );
        // Bit-identical on re-run and across thread counts.
        let again = MonteCarlo::new(cut_cfg).component_mttf(&trace, rate, freq).unwrap();
        assert_eq!(cut, again);
        let four = MonteCarloConfig { threads: 4, ..cut_cfg };
        let wide = MonteCarlo::new(four).component_mttf(&trace, rate, freq).unwrap();
        assert_eq!(cut, wide);
    }

    #[test]
    fn injected_cut_at_chunk_zero_is_the_typed_deadline_error() {
        use serr_inject::{FaultKind, FaultPlan};
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, FaultKind::DeadlineExhaust))
            .find(|p| p.deadline_cut_chunk() == Some(0))
            .expect("some seed cuts at chunk 0");
        let cfg = MonteCarloConfig { trials: 4_096, chaos: Some(plan), ..Default::default() };
        let res = MonteCarlo::new(cfg).component_mttf(
            &trace,
            RawErrorRate::per_year(5.0),
            Frequency::base(),
        );
        assert!(
            matches!(res, Err(SerrError::DeadlineExhausted { .. })),
            "expected DeadlineExhausted, got {res:?}"
        );
    }

    #[test]
    fn injected_worker_panic_surfaces_as_typed_engine_fault() {
        use serr_inject::{FaultKind, FaultPlan};
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let base = MonteCarloConfig { trials: 8_192, threads: 1, ..Default::default() };
        // Pick a plan whose victim chunk actually exists for this run seed.
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, FaultKind::ChunkPanic))
            .find(|p| (0..8).any(|c| p.chunk_panics(base.seed, c)))
            .expect("some seed panics within the first 8 chunks");
        // Quiet the default panic hook for the injected panics; restoring it
        // would race other tests, and the filter chains to the previous hook
        // for every genuine panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos: injected"));
            if !injected {
                prev(info);
            }
        }));
        for threads in [1usize, 3] {
            let cfg = MonteCarloConfig { threads, chaos: Some(plan), ..base };
            match MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()) {
                Err(SerrError::EngineFault { site, detail }) => {
                    assert_eq!(site, "monte carlo worker");
                    assert!(detail.contains("chaos: injected panic"), "detail: {detail}");
                }
                other => panic!("threads={threads}: expected EngineFault, got {other:?}"),
            }
        }
    }

    #[test]
    fn generous_deadline_matches_unbounded_run() {
        use std::time::Duration;
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let base = MonteCarloConfig { trials: 5_000, threads: 2, ..Default::default() };
        let bounded = MonteCarloConfig { deadline: Some(Duration::from_secs(3600)), ..base };
        let a = MonteCarlo::new(base).component_mttf(&trace, rate, Frequency::base()).unwrap();
        let b = MonteCarlo::new(bounded).component_mttf(&trace, rate, Frequency::base()).unwrap();
        assert!(!b.truncated);
        assert_eq!(a, b);
    }

    #[test]
    fn deadline_helper_shares_semantics_between_gate_and_workers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};
        let started = Instant::now();

        // No deadline: never expires, flag untouched.
        let flag = AtomicBool::new(false);
        assert!(!deadline_expired(&started, None, &flag));
        assert!(!flag.load(Ordering::Relaxed));

        // Zero budget: expires on the first consultation (the pre-run gate
        // path) and latches the flag.
        let flag = AtomicBool::new(false);
        assert!(deadline_expired(&started, Some(Duration::ZERO), &flag));
        assert!(flag.load(Ordering::Relaxed));

        // Generous budget: not expired, flag stays clear.
        let flag = AtomicBool::new(false);
        assert!(!deadline_expired(&started, Some(Duration::from_secs(3600)), &flag));
        assert!(!flag.load(Ordering::Relaxed));
    }

    #[test]
    fn expiry_observed_by_one_worker_is_sticky_for_all() {
        use std::sync::atomic::AtomicBool;
        use std::time::{Duration, Instant};
        // Regression for the mid-run guarantee: once any worker has seen
        // the deadline pass, every later check answers "expired" without
        // consulting the clock — even against a budget the clock would
        // still call generous — so no worker can buy a second chunk after
        // a peer observed expiry.
        let started = Instant::now();
        let flag = AtomicBool::new(false);
        assert!(deadline_expired(&started, Some(Duration::ZERO), &flag), "first observer trips");
        assert!(
            deadline_expired(&started, Some(Duration::from_secs(3600)), &flag),
            "sticky flag must override a clock that says there is time left"
        );
    }

    #[test]
    fn tiny_deadline_never_buys_a_second_chunk_per_worker() {
        use std::time::Duration;
        // A 1 ns budget is always spent by the time anyone checks: either
        // the pre-run gate catches it (typed error), or — on a coarse
        // clock — workers run exactly their first claimed chunk each and
        // then stop. Either way no worker completes two chunks: with the
        // old duplicated checks, drift between the two predicates could
        // hand an expired worker one more chunk.
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        for threads in [1usize, 4] {
            let cfg = MonteCarloConfig {
                trials: 40_960,
                threads,
                deadline: Some(Duration::from_nanos(1)),
                ..Default::default()
            };
            match MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()) {
                Err(SerrError::DeadlineExhausted { budget_s, elapsed_s }) => {
                    assert!((budget_s - 1e-9).abs() < 1e-15);
                    assert!(elapsed_s >= budget_s, "the budget was blown, not merely met");
                }
                Ok(est) => {
                    assert!(est.truncated);
                    let n = est.ttf_seconds.count;
                    assert_eq!(n % TRIAL_CHUNK, 0, "whole chunks only");
                    assert!(
                        n <= threads as u64 * TRIAL_CHUNK,
                        "threads={threads}: {n} trials means some worker bought a second \
                         chunk after expiry"
                    );
                }
                other => panic!("threads={threads}: unexpected result {other:?}"),
            }
        }
    }

    #[test]
    fn observer_telemetry_is_readonly_and_chunk_ordered() {
        use serr_obs::Value;
        // Attaching an observer must not change the estimate, and the
        // mc.chunk convergence snapshots arrive in ascending chunk order
        // with a running sample count.
        let trace = IntervalTrace::busy_idle(10, 10).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let cfg = MonteCarloConfig { trials: 5_000, threads: 4, ..Default::default() };
        let plain = MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()).unwrap();
        let (obs, sink) = Obs::memory();
        let observed = MonteCarlo::new(cfg)
            .with_observer(obs.clone())
            .component_mttf(&trace, rate, Frequency::base())
            .unwrap();
        assert_eq!(plain, observed);

        let chunks = sink.events_of("mc.chunk");
        assert_eq!(chunks.len(), 5, "5000 trials -> 5 chunks of 1024");
        let seqs: Vec<u64> = chunks.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        let last = &chunks[4];
        assert!(last.fields.iter().any(|(k, v)| *k == "n" && *v == Value::U64(5_000)));

        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counters["mc.rng_chunks"], 5);
        assert_eq!(
            snap.counters["mc.runs_batched_inversion"], 1,
            "default sampler is batched inversion"
        );
        assert!(!snap.counters.contains_key("mc.runs_event_loop"));
        assert!(!snap.counters.contains_key("mc.runs_inversion"));
        assert_eq!(snap.counters["mc.trials_completed"], 5_000);
        assert_eq!(snap.histograms["stage.mc_run_ms"].count(), 1);
        assert_eq!(snap.histograms["stage.trace_compile_ms"].count(), 1);
        assert!(snap.gauges["mc.samples_per_sec"] > 0.0);
    }

    #[test]
    fn rejects_zero_event_cap() {
        let live = IntervalTrace::constant(10, 1.0).unwrap();
        let engine =
            MonteCarlo::new(MonteCarloConfig { max_events_per_trial: 0, ..Default::default() });
        assert!(engine
            .component_mttf(&live, RawErrorRate::per_year(1.0), Frequency::base())
            .is_err());
    }
}
