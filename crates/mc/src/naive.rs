//! The naive fault-injection-style reference sampler.
//!
//! The paper notes the traditional alternative to modeling: "fault
//! injection in low-level simulators ... requires running numerous
//! experiments that make it impractically slow" (Section 1). This module
//! implements the trace-level analogue — walk the workload cycle by cycle,
//! flip a coin for a raw error in each cycle, check masking — as a
//! *reference implementation*: it is obviously correct, runs in time
//! proportional to the time to failure (instead of the number of raw
//! errors), and validates the production sampler in `crate::sampler`. The
//! `engines` Criterion bench quantifies the gap (orders of magnitude),
//! reproducing the paper's motivation for model-based estimation.

use rand::Rng;
use serr_trace::VulnerabilityTrace;
use serr_types::SerrError;

/// Samples one time to failure by stepping individual cycles, starting
/// `initial_phase` cycles into the workload loop (`0` is the paper's
/// convention; see [`crate::config::StartPhase`]).
///
/// The per-cycle raw-error probability is `1 − e^{−λ}` (at most one raw
/// error per cycle is modeled, accurate for `λ_cycle ≪ 1` — which holds for
/// every physical configuration: even a 10⁹-bit component at 5000× the
/// baseline rate has `λ_cycle ≈ 8e-9`).
///
/// # Errors
///
/// Returns [`SerrError::NoConvergence`] after `max_cycles` cycles without a
/// failure.
///
/// # Panics
///
/// Panics if `lambda_cycle` is outside `(0, 1)` or `initial_phase` lies
/// outside the period.
pub fn sample_time_to_failure_naive(
    trace: &dyn VulnerabilityTrace,
    lambda_cycle: f64,
    max_cycles: u64,
    rng: &mut impl Rng,
    initial_phase: u64,
) -> Result<f64, SerrError> {
    assert!(
        lambda_cycle > 0.0 && lambda_cycle < 1.0,
        "per-cycle rate must be in (0,1), got {lambda_cycle}"
    );
    let period = trace.period_cycles();
    assert!(initial_phase < period, "initial phase {initial_phase} outside [0, {period})");
    let p_raw = -(-lambda_cycle).exp_m1();
    let mut cycle = 0u64;
    while cycle < max_cycles {
        if rng.gen_range(0.0..1.0) < p_raw {
            // A raw error strikes this cycle; masked per the trace at the
            // phase-shifted position.
            let v = trace.vulnerability_at((initial_phase + cycle) % period);
            if v > 0.0 && (v >= 1.0 || rng.gen_range(0.0..1.0) < v) {
                return Ok(cycle as f64);
            }
        }
        cycle += 1;
    }
    Err(SerrError::NoConvergence {
        what: "naive cycle-stepping trial".into(),
        after: max_cycles as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_time_to_failure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use serr_numeric::stats::RunningStats;
    use serr_trace::IntervalTrace;

    #[test]
    fn agrees_with_fast_sampler_and_renewal() {
        // λ_cycle = 0.01 on a busy/idle loop: small enough for the
        // one-error-per-cycle approximation, large enough that naive trials
        // terminate quickly.
        let trace = IntervalTrace::busy_idle(40, 60).unwrap();
        let lambda = 0.01;
        let trials = 60_000;

        let mut rng = SmallRng::seed_from_u64(5);
        let mut naive = RunningStats::new();
        for _ in 0..trials {
            naive.push(
                sample_time_to_failure_naive(&trace, lambda, 10_000_000, &mut rng, 0).unwrap(),
            );
        }

        let mut rng = SmallRng::seed_from_u64(6);
        let mut fast = RunningStats::new();
        for _ in 0..trials {
            fast.push(
                sample_time_to_failure(&trace, lambda, 1_000_000, &mut rng, 0.0)
                    .unwrap()
                    .ttf_cycles,
            );
        }

        let renewal = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        // Continuous-time (fast/renewal) vs discrete-cycle (naive) differ
        // by O(1) cycle plus O(λ) second-error mass; both land within
        // combined noise + 1 cycle of the exact answer.
        let tol = 3.0 * (naive.ci95_half_width() + fast.ci95_half_width()) + 1.0;
        assert!(
            (naive.mean() - renewal).abs() < tol,
            "naive {} vs renewal {renewal} (tol {tol})",
            naive.mean()
        );
        assert!(
            (fast.mean() - naive.mean()).abs() < tol,
            "fast {} vs naive {}",
            fast.mean(),
            naive.mean()
        );
    }

    #[test]
    fn naive_cost_scales_with_mttf_not_error_count() {
        // At λ_cycle = 1e-6 a naive trial must step ~10⁶ cycles; the fast
        // sampler needs ~2 events. This is the paper's "impractically
        // slow" point, demonstrated as an operation-count ratio.
        let trace = IntervalTrace::busy_idle(50, 50).unwrap();
        let lambda = 1e-6;
        let mut rng = SmallRng::seed_from_u64(9);
        let out = sample_time_to_failure(&trace, lambda, 1_000, &mut rng, 0.0).unwrap();
        // Fast sampler: a handful of events.
        assert!(out.events < 100);
        // Naive: the failure lies ~2/λ = 2e6 cycles out; a single trial
        // visits that many cycles (we bound the demonstration at 100k).
        let res = sample_time_to_failure_naive(&trace, lambda, 100_000, &mut rng, 0);
        assert!(matches!(res, Err(SerrError::NoConvergence { .. })));
    }

    #[test]
    fn rejects_out_of_range_rate() {
        let trace = IntervalTrace::busy_idle(1, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sample_time_to_failure_naive(&trace, 1.5, 10, &mut rng, 0)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rejects_out_of_range_phase() {
        let trace = IntervalTrace::busy_idle(1, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sample_time_to_failure_naive(&trace, 0.01, 10, &mut rng, 2)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn initial_phase_matches_shift_averaged_renewal() {
        // Regression: the sampler used to ignore the starting phase,
        // indexing the trace from cycle 0 regardless — so stationary-start
        // trials silently reproduced the workload-start distribution. With
        // the phase honored, uniformly random starts must average to the
        // shift-averaged renewal MTTF, which differs strongly from the
        // busy-start value on an asymmetric loop.
        let trace = IntervalTrace::busy_idle(20, 80).unwrap();
        let lambda = 0.02;
        let period = trace.period_cycles();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut stats = RunningStats::new();
        for _ in 0..60_000 {
            let phase = rng.gen_range(0..period);
            stats.push(
                sample_time_to_failure_naive(&trace, lambda, 10_000_000, &mut rng, phase).unwrap(),
            );
        }
        use std::sync::Arc;
        let arc: Arc<dyn VulnerabilityTrace> = Arc::new(trace.clone());
        let want: f64 = (0..period)
            .map(|i| {
                let t = serr_trace::ShiftedTrace::new(arc.clone(), i);
                serr_analytic::renewal::renewal_mttf_cycles(&t, lambda)
            })
            .sum::<f64>()
            / period as f64;
        let err = (stats.mean() - want).abs() / want;
        assert!(err < 0.03, "naive {} vs shift-averaged renewal {want}: {err}", stats.mean());
        // And far from the busy-start answer the bug used to produce.
        let busy_start = serr_analytic::renewal::renewal_mttf_cycles(&trace, lambda);
        assert!(
            (stats.mean() - busy_start).abs() / busy_start > 0.1,
            "stationary mean {} indistinguishable from busy-start {busy_start}",
            stats.mean()
        );
    }
}
