//! Property tests: `CompiledTrace` is an exact lowering of its source.
//!
//! The Monte Carlo engine swaps every trace for its compiled form before
//! the trial loop, so any disagreement between the two representations is a
//! silent estimate corruption, not a crash. These tests pin the agreement
//! on `vulnerability_at`, `cumulative_within_period`, and `avf` across
//! randomized interval, dense, and shifted traces — including periods far
//! above the bucket-table memory cap, where point queries take the
//! wide-bucket fallback paths.

use proptest::prelude::*;
use serr_trace::{
    CompiledTrace, DenseTrace, IntervalTrace, Segment, ShiftedTrace, VulnerabilityTrace,
};

/// Vulnerability levels quantized to q/8: exactly representable in `f32`
/// (so `DenseTrace`'s storage is lossless) and in `f64` prefix arithmetic.
fn level() -> impl Strategy<Value = f64> {
    (0..=8u8).prop_map(|q| f64::from(q) / 8.0)
}

/// Asserts the full agreement contract between a source trace and its
/// compiled form at the given query cycles.
fn assert_agreement(
    source: &dyn VulnerabilityTrace,
    compiled: &CompiledTrace,
    cycles: &[u64],
) -> Result<(), TestCaseError> {
    let period = source.period_cycles();
    prop_assert_eq!(compiled.period_cycles(), period);

    // AVF: both sides reduce the same segment sums; allow only rounding
    // differences from the merge of adjacent equal-valued spans.
    let avf_diff = (compiled.avf() - source.avf()).abs();
    prop_assert!(avf_diff < 1e-12, "avf {} vs {}", compiled.avf(), source.avf());
    prop_assert_eq!(compiled.is_never_vulnerable(), source.is_never_vulnerable());

    for &raw in cycles {
        let c = raw % period;
        // Point queries must agree bitwise: compilation copies values.
        prop_assert_eq!(
            compiled.vulnerability_at(c),
            source.vulnerability_at(c),
            "vulnerability_at({})",
            c
        );
        // Cumulative sums may associate differently across merged spans;
        // the bound scales with the magnitude of the sum itself.
        let r = c + 1; // valid: r <= period
        let got = compiled.cumulative_within_period(r);
        let want = source.cumulative_within_period(r);
        let tol = 1e-9 * (1.0 + want.abs());
        prop_assert!(
            (got - want).abs() <= tol,
            "cumulative_within_period({}): {} vs {}",
            r,
            got,
            want
        );
    }
    let full = compiled.cumulative_within_period(period);
    let full_want = source.cumulative_within_period(period);
    prop_assert!((full - full_want).abs() <= 1e-9 * (1.0 + full_want.abs()));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn compiled_agrees_with_interval_trace(
        levels in proptest::collection::vec(level(), 2..60),
        probes in proptest::collection::vec(any::<u64>(), 32),
    ) {
        let src = IntervalTrace::from_levels(&levels).unwrap();
        let compiled = CompiledTrace::compile(&src).expect("small trace compiles");
        assert_agreement(&src, &compiled, &probes)?;
    }

    #[test]
    fn compiled_agrees_with_dense_trace(
        levels in proptest::collection::vec(level(), 1..200),
        probes in proptest::collection::vec(any::<u64>(), 32),
    ) {
        let src = DenseTrace::new(levels).unwrap();
        let compiled = CompiledTrace::compile(&src).expect("dense trace compiles");
        assert_agreement(&src, &compiled, &probes)?;
    }

    #[test]
    fn compiled_agrees_with_shifted_trace(
        levels in proptest::collection::vec(level(), 2..60),
        shift in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 32),
    ) {
        let base = std::sync::Arc::new(IntervalTrace::from_levels(&levels).unwrap());
        let src = ShiftedTrace::new(base, shift);
        let compiled = CompiledTrace::compile(&src).expect("shifted view compiles");
        assert_agreement(&src, &compiled, &probes)?;
    }

    #[test]
    fn compiled_agrees_above_bucket_table_cap(
        // Segment lengths up to 2^38 cycles: a handful of segments push the
        // period far beyond MAX_BUCKETS (2^21), so buckets span millions of
        // cycles and the in-bucket scan/bisect paths do real work.
        spans in proptest::collection::vec((1u64..(1u64 << 38), level()), 2..12),
        probes in proptest::collection::vec(any::<u64>(), 48),
    ) {
        let segments: Vec<Segment> = spans
            .iter()
            .map(|&(len, v)| Segment::new(len, v).unwrap())
            .collect();
        let src = IntervalTrace::from_segments(segments).unwrap();
        prop_assume!(src.period_cycles() > CompiledTrace::MAX_BUCKETS);
        let compiled = CompiledTrace::compile(&src).expect("few segments compile");
        prop_assert!(compiled.bucket_count() as u64 <= CompiledTrace::MAX_BUCKETS);
        prop_assert!(compiled.bucket_cycles() > 1, "cap must actually widen buckets");

        // Probe uniformly plus right at every segment boundary (the edges
        // are where a bucket index off by one would show).
        let mut cycles = probes.clone();
        for &end in &src.breakpoints() {
            cycles.push(end.saturating_sub(1));
            cycles.push(end % src.period_cycles());
        }
        assert_agreement(&src, &compiled, &cycles)?;
    }
}
