//! Property test: the Monte Carlo sampler agrees with the exact renewal
//! answer on randomly shaped traces across rate regimes.

use proptest::prelude::*;
use serr_mc::{MonteCarlo, MonteCarloConfig};
use serr_trace::IntervalTrace;
use serr_types::{Frequency, RawErrorRate};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn monte_carlo_matches_renewal_on_random_traces(
        levels in proptest::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 2..40),
        lambda_l_exp in -3.0f64..1.5,
    ) {
        prop_assume!(levels.iter().any(|&v| v > 0.0));
        let trace = IntervalTrace::from_levels(&levels).unwrap();
        let freq = Frequency::base();
        let period_s = levels.len() as f64 / freq.hz();
        // λ·L spans 1e-3 .. ~30 across cases.
        let lambda_l = 10f64.powf(lambda_l_exp);
        let rate = RawErrorRate::per_second(lambda_l / period_s);

        let mc = MonteCarlo::new(MonteCarloConfig {
            trials: 30_000,
            threads: 1,
            ..Default::default()
        });
        let est = mc.component_mttf(&trace, rate, freq).unwrap();
        let exact = serr_analytic::renewal::renewal_mttf(&trace, rate, freq).unwrap();
        let err = (est.mttf.as_secs() - exact.as_secs()).abs() / exact.as_secs();
        let budget = 4.0 * est.relative_ci95() + 1e-3;
        prop_assert!(
            err < budget,
            "λL={lambda_l:.3}: MC {} vs exact {} (err {err}, budget {budget})",
            est.mttf.as_secs(),
            exact.as_secs()
        );
    }
}
