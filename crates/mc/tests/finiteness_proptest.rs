//! Property test: the sampler's numerics hold up across the full rate range
//! the design space can reach. For λL anywhere in 1e-12 .. 1e6 a trial must
//! either produce a finite, non-negative time to failure or fail with the
//! typed `NoConvergence` cap error — never a panic, a NaN, or an infinity.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serr_mc::sampler::sample_time_to_failure;
use serr_trace::IntervalTrace;
use serr_types::SerrError;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn sampled_ttf_is_finite_across_fourteen_decades_of_lambda_l(
        levels in proptest::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 2..40),
        lambda_l_exp in -12.0f64..6.0,
        phase_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        prop_assume!(levels.iter().any(|&v| v > 0.0));
        let trace = IntervalTrace::from_levels(&levels).unwrap();
        let l = levels.len() as f64;
        let lambda_cycle = 10f64.powf(lambda_l_exp) / l;
        // phase_frac < 1.0, but rounding in the multiply can still land
        // exactly on L, which the sampler rejects; fold that edge back to 0.
        let mut phase = phase_frac * l;
        if phase >= l {
            phase = 0.0;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match sample_time_to_failure(&trace, lambda_cycle, 2_000_000, &mut rng, phase) {
            Ok(out) => {
                prop_assert!(
                    out.ttf_cycles.is_finite() && out.ttf_cycles >= 0.0,
                    "λL=1e{lambda_l_exp:.2}: non-finite or negative ttf {}",
                    out.ttf_cycles
                );
                prop_assert!(out.events >= 1);
            }
            // At extreme λL a mostly-idle trace can exhaust the event budget
            // before an arrival strikes a vulnerable cycle; the typed cap
            // error is the designed outcome there. In the moderate regime
            // (expected events per trial ≲ 1/AVF ≲ a few hundred) the cap is
            // unreachable, so an error would be a real regression.
            Err(SerrError::NoConvergence { .. }) => {
                prop_assert!(
                    lambda_l_exp >= 2.0,
                    "event cap tripped in the moderate regime λL=1e{lambda_l_exp:.2}"
                );
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
