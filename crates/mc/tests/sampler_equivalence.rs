//! Distributional equivalence of the time-to-failure samplers.
//!
//! The thinning identity (see `serr_mc::inversion`) says the event-loop
//! walk, the scalar Λ-inversion draw, and the batched inversion passes all
//! sample the *same* distribution,
//! `P(TTF > t) = exp(−λ·[V(φ+t) − V(φ)])` — not merely the same mean. This
//! suite pins that with two-sample Kolmogorov–Smirnov tests across the
//! regimes the paper's sweeps visit (λL from 1e-9 to 2000, binary and
//! fractional masking, workload-start and stationary phases), anchors all
//! three against the naive cycle-stepping reference, property-tests the
//! inversion sampler against the renewal closed form on random traces, and
//! pins the batched sampler's bit-identity across thread counts (its
//! versioned counter-RNG schedule).
//!
//! Thresholds are 1.5× the α = 0.01 two-sample critical value: by the
//! Kolmogorov tail bound `P(D > c·√((n+m)/nm)) ≈ 2·exp(−2c²)` that puts a
//! fixed-seed false alarm at ~1e-5 per cell, while a landing-cycle bug in
//! the inverse lookup (mass placed in the wrong segment) distorts the CDF
//! by whole percentage points and still fails loudly.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serr_mc::naive::sample_time_to_failure_naive;
use serr_mc::{MonteCarlo, MonteCarloConfig, SamplerKind, StartPhase};
use serr_numeric::ecdf::{ks_two_sample_critical_value, Ecdf};
use serr_trace::{IntervalTrace, VulnerabilityTrace};
use serr_types::{Frequency, RawErrorRate};

/// Draws `n` TTF samples (seconds) through the engine's chunked trial loop
/// with the given sampler, at the raw rate that makes `λ·L = lambda_l`.
fn engine_samples(
    trace: &IntervalTrace,
    lambda_l: f64,
    sampler: SamplerKind,
    start_phase: StartPhase,
    n: u64,
    seed: u64,
) -> Vec<f64> {
    let freq = Frequency::base();
    let period_s = trace.period_cycles() as f64 / freq.hz();
    let rate = RawErrorRate::per_second(lambda_l / period_s);
    let mc = MonteCarlo::new(MonteCarloConfig {
        trials: n,
        seed,
        sampler,
        start_phase,
        ..Default::default()
    });
    mc.sample_ttfs(trace, rate, freq, n).expect("sampling succeeds")
}

#[test]
fn inversion_matches_event_loop_across_the_design_grid() {
    let binary = IntervalTrace::busy_idle(30, 70).expect("valid trace");
    let fractional =
        IntervalTrace::from_levels(&[1.0, 0.25, 0.0, 0.5, 0.0, 0.75, 0.0, 0.0]).expect("valid");
    let n = 20_000usize;
    let crit = 1.5 * ks_two_sample_critical_value(n, n, 0.01);
    for (tname, trace) in [("binary", &binary), ("fractional", &fractional)] {
        for lambda_l in [1e-9, 1.0, 2000.0] {
            for start in [StartPhase::WorkloadStart, StartPhase::Stationary] {
                let inv = engine_samples(
                    trace,
                    lambda_l,
                    SamplerKind::Inversion,
                    start,
                    n as u64,
                    0xA11C_E001,
                );
                let ev = engine_samples(
                    trace,
                    lambda_l,
                    SamplerKind::EventLoop,
                    start,
                    n as u64,
                    0xB0B0_0002,
                );
                let d =
                    Ecdf::new(inv).expect("no NaN").ks_two_sample(&Ecdf::new(ev).expect("no NaN"));
                assert!(
                    d < crit,
                    "{tname} λL={lambda_l:e} {start:?}: KS {d:.5} ≥ {crit:.5} — the samplers \
                     draw different distributions"
                );
            }
        }
    }
}

#[test]
fn batched_inversion_matches_the_scalar_oracle_across_the_design_grid() {
    // The batched sampler draws from a *different* (versioned) random
    // stream — see `serr_mc::batched::BATCHED_RNG_SCHEDULE_VERSION` — so
    // the pin here is distributional: two-sample KS against the scalar
    // inversion oracle over the same grid as the event-loop duel.
    let binary = IntervalTrace::busy_idle(30, 70).expect("valid trace");
    let fractional =
        IntervalTrace::from_levels(&[1.0, 0.25, 0.0, 0.5, 0.0, 0.75, 0.0, 0.0]).expect("valid");
    let n = 20_000usize;
    let crit = 1.5 * ks_two_sample_critical_value(n, n, 0.01);
    for (tname, trace) in [("binary", &binary), ("fractional", &fractional)] {
        for lambda_l in [1e-9, 1.0, 2000.0] {
            for start in [StartPhase::WorkloadStart, StartPhase::Stationary] {
                let batched = engine_samples(
                    trace,
                    lambda_l,
                    SamplerKind::BatchedInversion,
                    start,
                    n as u64,
                    0xD00D_0005,
                );
                let inv = engine_samples(
                    trace,
                    lambda_l,
                    SamplerKind::Inversion,
                    start,
                    n as u64,
                    0xA11C_E001,
                );
                let d = Ecdf::new(batched)
                    .expect("no NaN")
                    .ks_two_sample(&Ecdf::new(inv).expect("no NaN"));
                assert!(
                    d < crit,
                    "{tname} λL={lambda_l:e} {start:?}: KS {d:.5} ≥ {crit:.5} — the batched \
                     passes draw a different distribution than the scalar oracle"
                );
            }
        }
    }
}

#[test]
fn samplers_are_ks_equivalent_on_protection_transformed_traces() {
    // The --protect pipeline reshapes traces into forms no hand-written
    // test trace has: dense fractional scrub staircases, ECC-compressed
    // mid-range values, and a delay-zeroed tail. The thinning identity
    // holds for *any* valid trace, so all three samplers must still draw
    // the same TTF distribution on the transformed output — this pins the
    // samplers' landing-cycle math on exactly the segment shapes protected
    // estimation runs feed them.
    use serr_trace::{Transform, TransformPipeline};
    let pattern = [1.0, 1.0, 1.0, 0.25, 0.0, 0.5, 0.75, 0.0, 1.0, 0.0];
    let levels: Vec<f64> = pattern.iter().cycle().take(200).copied().collect();
    let src = IntervalTrace::from_levels(&levels).expect("valid source trace");
    let pipeline = TransformPipeline::new(vec![
        Transform::Scrub { interval_cycles: 50 },
        Transform::EccSecDed { word_bits: 8 },
        Transform::DelayReport { window_cycles: 15 },
    ]);
    let trace = pipeline.apply_interval(&src).expect("pipeline applies");
    assert!(trace.segment_count() > src.segment_count(), "scrub staircase must fan out");
    let n = 20_000usize;
    let crit = 1.5 * ks_two_sample_critical_value(n, n, 0.01);
    for lambda_l in [1e-6, 1.0, 500.0] {
        for start in [StartPhase::WorkloadStart, StartPhase::Stationary] {
            let ev =
                engine_samples(&trace, lambda_l, SamplerKind::EventLoop, start, n as u64, 0x7E01);
            let inv =
                engine_samples(&trace, lambda_l, SamplerKind::Inversion, start, n as u64, 0x7E02);
            let batched = engine_samples(
                &trace,
                lambda_l,
                SamplerKind::BatchedInversion,
                start,
                n as u64,
                0x7E03,
            );
            let inv_ecdf = Ecdf::new(inv).expect("no NaN");
            let d_ev = inv_ecdf.ks_two_sample(&Ecdf::new(ev).expect("no NaN"));
            let d_batched = inv_ecdf.ks_two_sample(&Ecdf::new(batched).expect("no NaN"));
            assert!(
                d_ev < crit,
                "transformed λL={lambda_l:e} {start:?}: inversion vs event loop KS \
                 {d_ev:.5} ≥ {crit:.5}"
            );
            assert!(
                d_batched < crit,
                "transformed λL={lambda_l:e} {start:?}: batched vs scalar KS \
                 {d_batched:.5} ≥ {crit:.5}"
            );
        }
    }
}

#[test]
fn batched_inversion_is_bit_identical_across_thread_counts() {
    // The per-chunk (seed, chunk) counter-RNG derivation means the sample
    // vector — not just the mean — is bit-equal at any thread count. Any
    // change to the intra-chunk draw order must bump
    // `BATCHED_RNG_SCHEDULE_VERSION` and re-pin this test.
    let trace = IntervalTrace::busy_idle(30, 70).expect("valid trace");
    for start in [StartPhase::WorkloadStart, StartPhase::Stationary] {
        let mut baseline = None;
        for threads in [1usize, 8] {
            let freq = Frequency::base();
            let period_s = trace.period_cycles() as f64 / freq.hz();
            let rate = RawErrorRate::per_second(1.0 / period_s);
            let mc = MonteCarlo::new(MonteCarloConfig {
                trials: 10_000,
                seed: 0x5EED_0006,
                threads,
                sampler: SamplerKind::BatchedInversion,
                start_phase: start,
                ..Default::default()
            });
            let ttfs = mc.sample_ttfs(&trace, rate, freq, 10_000).expect("sampling succeeds");
            match &baseline {
                None => baseline = Some(ttfs),
                Some(want) => assert_eq!(
                    want, &ttfs,
                    "{start:?}: sample vector differs between 1 and {threads} threads"
                ),
            }
        }
    }
}

#[test]
fn both_samplers_match_the_naive_reference_at_moderate_rate() {
    // λL = 1 on a 1000-cycle loop: λ_cycle = 1e-3 is small enough that the
    // naive sampler's one-error-per-cycle discretization shifts its CDF by
    // less than 1e-3 — invisible next to the KS threshold at this n.
    let trace = IntervalTrace::busy_idle(300, 700).expect("valid trace");
    let lambda_cycle = 1e-3;
    let n = 20_000usize;
    let hz = Frequency::base().hz();
    let mut rng = SmallRng::seed_from_u64(0xFACE_0003);
    let naive: Vec<f64> = (0..n)
        .map(|_| {
            sample_time_to_failure_naive(&trace, lambda_cycle, 100_000_000, &mut rng, 0)
                .expect("naive trial terminates")
                / hz
        })
        .collect();
    let naive_ecdf = Ecdf::new(naive).expect("no NaN");
    let crit = 1.5 * ks_two_sample_critical_value(n, n, 0.01) + 2.0 * lambda_cycle;
    for sampler in [SamplerKind::BatchedInversion, SamplerKind::Inversion, SamplerKind::EventLoop] {
        let s =
            engine_samples(&trace, 1.0, sampler, StartPhase::WorkloadStart, n as u64, 0xCAFE_0004);
        let d = naive_ecdf.ks_two_sample(&Ecdf::new(s).expect("no NaN"));
        assert!(d < crit, "{sampler:?} vs naive: KS {d:.5} ≥ {crit:.5}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
    #[test]
    fn inversion_matches_renewal_closed_form_on_random_traces(
        levels in proptest::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 2..48),
        lambda_l_exp in -3.0f64..1.5,
    ) {
        prop_assume!(levels.iter().any(|&v| v > 0.0));
        let trace = IntervalTrace::from_levels(&levels).unwrap();
        let freq = Frequency::base();
        let lambda_l = 10f64.powf(lambda_l_exp);
        let rate = RawErrorRate::per_second(lambda_l / (levels.len() as f64 / freq.hz()));
        let mc = MonteCarlo::new(MonteCarloConfig {
            trials: 30_000,
            threads: 1,
            sampler: SamplerKind::Inversion,
            ..Default::default()
        });
        let est = mc.component_mttf(&trace, rate, freq).unwrap();
        prop_assert_eq!(est.sampler, SamplerKind::Inversion);
        // One Exp(1) draw per trial, no event walk — the O(1) contract.
        prop_assert_eq!(est.mean_events_per_trial, 1.0);
        let exact = serr_analytic::renewal::renewal_mttf(&trace, rate, freq).unwrap();
        let err = (est.mttf.as_secs() - exact.as_secs()).abs() / exact.as_secs();
        let budget = 4.0 * est.relative_ci95() + 1e-3;
        prop_assert!(
            err < budget,
            "λL={lambda_l:.3}: inversion {} vs renewal {} (err {err}, budget {budget})",
            est.mttf.as_secs(),
            exact.as_secs()
        );
    }

    #[test]
    fn samplers_are_ks_equivalent_on_random_traces(
        levels in proptest::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 2..32),
        lambda_l_exp in -2.0f64..2.0,
        stationary in any::<bool>(),
    ) {
        prop_assume!(levels.iter().any(|&v| v > 0.0));
        let trace = IntervalTrace::from_levels(&levels).unwrap();
        let lambda_l = 10f64.powf(lambda_l_exp);
        let start = if stationary { StartPhase::Stationary } else { StartPhase::WorkloadStart };
        let n = 8_000usize;
        let inv = engine_samples(&trace, lambda_l, SamplerKind::Inversion, start, n as u64, 0x11);
        let ev = engine_samples(&trace, lambda_l, SamplerKind::EventLoop, start, n as u64, 0x22);
        let d = Ecdf::new(inv).unwrap().ks_two_sample(&Ecdf::new(ev).unwrap());
        let crit = 1.5 * ks_two_sample_critical_value(n, n, 0.01);
        prop_assert!(d < crit, "λL={lambda_l:.3} {start:?}: KS {d:.5} ≥ {crit:.5}");
    }
}
