//! Property-based tests on trace invariants.

use proptest::prelude::*;

use crate::{
    decode_interval_trace, encode_interval_trace, CompiledTrace, CompositeTrace, DenseTrace,
    IntervalTrace, Segment, Transform, TransformPipeline, VulnerabilityTrace,
};
use std::sync::Arc;

fn arb_levels() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0..=16u8).prop_map(|q| f64::from(q) / 16.0), 1..200)
}

fn arb_segments() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        (1..1000u64, (0..=20u8).prop_map(|q| f64::from(q) / 20.0))
            .prop_map(|(len, v)| Segment::new(len, v).expect("valid by construction")),
        1..30,
    )
}

proptest! {
    #[test]
    fn interval_avf_in_unit_range(segs in arb_segments()) {
        let t = IntervalTrace::from_segments(segs).unwrap();
        let avf = t.avf();
        prop_assert!((0.0..=1.0).contains(&avf));
    }

    #[test]
    fn interval_matches_dense_reference(levels in arb_levels()) {
        let dense = DenseTrace::new(levels.clone()).unwrap();
        let interval = IntervalTrace::from_levels(&levels).unwrap();
        prop_assert_eq!(dense.period_cycles(), interval.period_cycles());
        for c in 0..levels.len() as u64 {
            prop_assert!((dense.vulnerability_at(c) - interval.vulnerability_at(c)).abs() < 1e-6);
        }
        prop_assert!((dense.avf() - interval.avf()).abs() < 1e-6);
    }

    #[test]
    fn cumulative_is_monotone_and_consistent(segs in arb_segments()) {
        let t = IntervalTrace::from_segments(segs).unwrap();
        let period = t.period_cycles();
        let step = (period / 64).max(1);
        let mut prev = 0.0;
        let mut r = 0;
        while r <= period {
            let c = t.cumulative_within_period(r);
            prop_assert!(c >= prev - 1e-12, "cumulative decreased at {}", r);
            prev = c;
            r += step;
        }
        // Full-period cumulative equals AVF x L.
        let full = t.cumulative_within_period(period);
        prop_assert!((full - t.avf() * period as f64).abs() < 1e-9);
    }

    #[test]
    fn cumulative_difference_equals_pointwise_sum(levels in arb_levels()) {
        let t = IntervalTrace::from_levels(&levels).unwrap();
        let n = levels.len() as u64;
        let a = n / 3;
        let b = 2 * n / 3;
        let diff = t.cumulative_within_period(b) - t.cumulative_within_period(a);
        let direct: f64 = (a..b).map(|c| t.vulnerability_at(c)).sum();
        prop_assert!((diff - direct).abs() < 1e-9);
    }

    #[test]
    fn encode_decode_roundtrip(segs in arb_segments()) {
        let t = IntervalTrace::from_segments(segs).unwrap();
        let enc = encode_interval_trace(&t);
        let dec = decode_interval_trace(&enc).unwrap();
        prop_assert_eq!(dec, t);
    }

    #[test]
    fn composite_vulnerability_bounded(
        a in arb_levels(),
        w1 in 0.1f64..100.0,
        w2 in 0.1f64..100.0,
    ) {
        let n = a.len();
        let b: Vec<f64> = a.iter().map(|v| 1.0 - v).collect();
        let ta: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::from_levels(&a).unwrap());
        let tb: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::from_levels(&b).unwrap());
        let c = CompositeTrace::new(vec![(w1, ta), (w2, tb)]).unwrap();
        for cyc in 0..n as u64 {
            let v = c.vulnerability_at(cyc);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c.avf()));
    }

    #[test]
    fn wraparound_agrees_with_reduction(levels in arb_levels(), k in 0u64..5, off in 0u64..1000) {
        let t = IntervalTrace::from_levels(&levels).unwrap();
        let period = t.period_cycles();
        let cycle = k * period + (off % period);
        prop_assert_eq!(t.vulnerability_at(cycle), t.vulnerability_at(cycle % period));
    }
}

/// Crowded-bucket shape: many 1-cycle segments packed at the start of the
/// period followed by one enormous idle tail. The tail forces wide buckets,
/// so all the short segments share one bucket and point queries must take
/// the in-bucket binary-search fallback.
fn arb_crowded_segments() -> impl Strategy<Value = (Vec<Segment>, u64)> {
    (prop::collection::vec((0..=4u8).prop_map(|q| f64::from(q) / 4.0), 64..512), 30u32..45)
        .prop_map(|(head, tail_log2)| {
            let mut segs: Vec<Segment> = head
                .iter()
                .map(|&v| Segment::new(1, v).expect("1-cycle segment is valid"))
                .collect();
            segs.push(Segment::new(1u64 << tail_log2, 0.0).expect("tail segment is valid"));
            (segs, head.len() as u64)
        })
}

/// Cycles that stress `CompiledTrace::segment_index`: every bucket boundary
/// ±1 plus the segment ends themselves, the places where an off-by-one in
/// the bucket table or the scan loop would first show.
fn boundary_cycles(c: &CompiledTrace) -> Vec<u64> {
    let period = c.period_cycles();
    let mut cycles = Vec::new();
    let width = c.bucket_cycles();
    for b in 0..c.bucket_count() as u64 {
        let start = b * width;
        for x in [start.saturating_sub(1), start, start + 1] {
            if x < period {
                cycles.push(x);
            }
        }
    }
    for &end in &c.breakpoints() {
        for x in [end - 1, end % period, (end + 1) % period] {
            cycles.push(x);
        }
    }
    cycles
}

proptest! {
    #[test]
    fn compiled_matches_naive_at_bucket_boundaries_and_wraparound(
        levels in arb_levels(),
        k in 1u64..4,
    ) {
        let src = IntervalTrace::from_levels(&levels).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        let period = c.period_cycles();
        for cyc in boundary_cycles(&c) {
            prop_assert_eq!(
                c.vulnerability_at(cyc),
                src.vulnerability_at(cyc),
                "cycle {} of period {}", cyc, period
            );
            // Period wrap-around: cycle k·L + c must reduce to cycle c.
            let wrapped = k * period + cyc;
            prop_assert_eq!(c.vulnerability_at(wrapped), c.vulnerability_at(cyc));
        }
        // The cycle just before wrap and the wrap itself.
        prop_assert_eq!(c.vulnerability_at(period - 1), src.vulnerability_at(period - 1));
        prop_assert_eq!(c.vulnerability_at(period), src.vulnerability_at(0));
    }

    #[test]
    fn compiled_matches_naive_on_crowded_and_capped_bucket_tables(
        (segs, head_len) in arb_crowded_segments(),
    ) {
        let src = IntervalTrace::from_segments(segs).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        let period = c.period_cycles();
        // The huge tail must have forced buckets wider than one cycle, so
        // the 1-cycle head segments all share the first bucket (the crowded
        // in-bucket search path) — otherwise this test isn't testing it.
        prop_assert!(c.bucket_cycles() > head_len, "buckets not crowded");
        for cyc in (0..head_len + 2).chain(boundary_cycles(&c)) {
            prop_assert_eq!(
                c.vulnerability_at(cyc),
                src.vulnerability_at(cyc),
                "cycle {} of period {}", cyc, period
            );
        }
        // Wrap-around across the huge period must reduce exactly, including
        // the last cycle of the tail.
        for cyc in [period - 1, period, period + 1, 3 * period - 1, 3 * period + head_len] {
            prop_assert_eq!(c.vulnerability_at(cyc), src.vulnerability_at(cyc % period));
        }
        c.verify().expect("freshly compiled crowded trace verifies");
    }
}

/// A non-degenerate protection transform with parameters scaled to the
/// small traces `arb_segments`/`arb_levels` produce.
fn arb_transform() -> impl Strategy<Value = Transform> {
    prop_oneof![
        Just(Transform::Identity),
        (2..256u32).prop_map(|word_bits| Transform::EccSecDed { word_bits }),
        (1..5000u64).prop_map(|interval_cycles| Transform::Scrub { interval_cycles }),
        (0..200u64).prop_map(|window_cycles| Transform::DelayReport { window_cycles }),
    ]
}

proptest! {
    #[test]
    fn identity_transform_is_a_bit_for_bit_noop(segs in arb_segments()) {
        let t = IntervalTrace::from_segments(segs).unwrap();
        prop_assert_eq!(Transform::Identity.apply(&t).unwrap(), t.clone());
        prop_assert_eq!(TransformPipeline::identity().apply_interval(&t).unwrap(), t);
    }

    #[test]
    fn transforms_preserve_period_and_reduce_avf(
        segs in arb_segments(),
        t in arb_transform(),
    ) {
        let src = IntervalTrace::from_segments(segs).unwrap();
        if let Transform::DelayReport { window_cycles } = t {
            prop_assume!(window_cycles < src.period_cycles());
        }
        let out = t.apply(&src).unwrap();
        prop_assert_eq!(out.period_cycles(), src.period_cycles());
        // Protection never *adds* vulnerability: the tier-1 smoke's
        // protected-MTTF ≥ baseline assertion rests on this.
        prop_assert!(out.avf() <= src.avf() + 1e-12, "{} raised AVF", t);
        for c in (0..src.period_cycles()).step_by(97) {
            prop_assert!((0.0..=1.0).contains(&out.vulnerability_at(c)));
        }
    }

    #[test]
    fn ecc_and_delay_commute(
        segs in arb_segments(),
        word_bits in 2..256u32,
        window in 0..500u64,
    ) {
        // ECC is a pointwise value map with ecc(0) = 0; delay rearranges
        // cycles and zero-fills the tail. Maps with a zero fixed point
        // commute with rearrange-and-zero, bit for bit.
        let src = IntervalTrace::from_segments(segs).unwrap();
        prop_assume!(window < src.period_cycles());
        let ecc = Transform::EccSecDed { word_bits };
        let delay = Transform::DelayReport { window_cycles: window };
        let a = delay.apply(&ecc.apply(&src).unwrap()).unwrap();
        let b = ecc.apply(&delay.apply(&src).unwrap()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn scrub_preserves_mass_within_each_interval(
        levels in arb_levels(),
        interval in 1..300u64,
    ) {
        // The staircase's midpoint rule is exact for the linear ramp, so
        // cumulative mass at every scrub boundary matches the closed-form
        // integral of v(c)·((c mod T)/T) to float tolerance.
        let src = IntervalTrace::from_levels(&levels).unwrap();
        let out = Transform::Scrub { interval_cycles: interval }.apply(&src).unwrap();
        let period = src.period_cycles();
        // Per-cycle reference: the midpoint-rule mass of cycle c is
        // v(c)·((c mod T) + 0.5)/T, and summed over any whole step range it
        // equals the staircase mass exactly (both are the trapezoid
        // integral of the linear ramp).
        let mut want_prefix = Vec::with_capacity(period as usize + 1);
        let mut acc = 0.0f64;
        want_prefix.push(0.0);
        for c in 0..period {
            let ramp = ((c % interval) as f64 + 0.5) / interval as f64;
            acc += src.vulnerability_at(c) * ramp;
            want_prefix.push(acc);
        }
        let mut boundary = interval.min(period);
        loop {
            let got = out.cumulative_within_period(boundary);
            let want = want_prefix[boundary as usize];
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "boundary {}: staircase {} vs per-cycle ramp {}", boundary, got, want
            );
            if boundary == period {
                break;
            }
            boundary = (boundary + interval).min(period);
        }
    }
}

proptest! {
    #[test]
    fn breakpoints_cover_all_value_changes(levels in arb_levels()) {
        let t = IntervalTrace::from_levels(&levels).unwrap();
        let bps = t.breakpoints();
        prop_assert_eq!(*bps.last().unwrap(), t.period_cycles());
        // Between consecutive breakpoints the vulnerability is constant.
        let mut start = 0u64;
        for &end in &bps {
            let v = t.vulnerability_at(start);
            for c in start..end {
                prop_assert_eq!(t.vulnerability_at(c), v);
            }
            start = end;
        }
        // Dense representation agrees on breakpoints semantics.
        let dense = DenseTrace::new(levels).unwrap();
        let dbps = dense.breakpoints();
        prop_assert_eq!(*dbps.last().unwrap(), dense.period_cycles());
    }
}
