//! Dense per-cycle vulnerability traces with blocked prefix sums.

use serde::{Deserialize, Serialize};
use serr_types::SerrError;

use crate::{IntervalTrace, VulnerabilityTrace};

/// How many cycles share one stored prefix-sum block.
const BLOCK: usize = 4096;

/// A vulnerability trace stored densely, one `f32` per cycle, with blocked
/// prefix sums for `O(BLOCK)` cumulative queries.
///
/// This is the natural output format of a cycle-level timing simulator; for
/// long-running workloads convert to [`IntervalTrace`] via
/// [`DenseTrace::compress`].
///
/// # Rounding contract
///
/// [`DenseTrace::new`] accepts `f64` input but stores one `f32` per cycle:
/// each value is validated in `[0, 1]` as given, then rounded to the
/// nearest `f32` (at most half an ulp, `≤ 2⁻²⁵` anywhere in range). Every
/// query — [`VulnerabilityTrace::vulnerability_at`], cumulative sums,
/// [`VulnerabilityTrace::avf`] — answers from the *rounded* values, and the
/// stored values are re-validated after the cast, so the `[0, 1]` invariant
/// holds for what is actually queried. Both endpoints are exactly
/// representable as `f32`, so rounding can never push an in-range input out
/// of range (e.g. the `f64` just below `1.0` rounds *up* to exactly
/// `1.0f32` and stays valid). [`DenseTrace::compress`] is exact with
/// respect to these stored values — `f32` widens losslessly to `f64` — not
/// with respect to the pre-rounding input.
///
/// ```
/// use serr_trace::{DenseTrace, VulnerabilityTrace};
/// let t = DenseTrace::new(vec![1.0, 0.0, 0.5, 0.5]).unwrap();
/// assert_eq!(t.period_cycles(), 4);
/// assert_eq!(t.avf(), 0.5);
/// assert_eq!(t.vulnerability_at(6), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseTrace {
    values: Vec<f32>,
    /// `block_prefix[i]` = Σ of values in blocks `0..i`.
    block_prefix: Vec<f64>,
    total: f64,
}

impl DenseTrace {
    /// Builds a dense trace from per-cycle vulnerabilities, rounding each
    /// to the nearest `f32` (see the rounding contract on [`DenseTrace`]).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `values` is empty or any value
    /// is outside `[0, 1]` — before or (defensively) after rounding.
    pub fn new(values: Vec<f64>) -> Result<Self, SerrError> {
        if values.is_empty() {
            return Err(SerrError::invalid_trace("trace must contain at least one cycle"));
        }
        if let Some(bad) = values.iter().find(|v| !(0.0..=1.0).contains(*v)) {
            return Err(SerrError::invalid_trace(format!("vulnerability {bad} outside [0,1]")));
        }
        let stored: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        // Round-to-nearest cannot leave [0, 1] (both endpoints are exactly
        // representable, so no in-range f64 rounds past them), but every
        // query answers from the stored values — enforce the invariant on
        // them directly rather than inferring it from the f64 check above.
        if let Some(bad) = stored.iter().find(|v| !(0.0f32..=1.0).contains(*v)) {
            return Err(SerrError::invalid_trace(format!(
                "vulnerability {bad} outside [0,1] after f32 rounding"
            )));
        }
        let mut block_prefix = Vec::with_capacity(stored.len() / BLOCK + 2);
        block_prefix.push(0.0);
        let mut total = 0.0_f64;
        for chunk in stored.chunks(BLOCK) {
            let s: f64 = chunk.iter().map(|&v| f64::from(v)).sum();
            total += s;
            block_prefix.push(total);
        }
        Ok(DenseTrace { values: stored, block_prefix, total })
    }

    /// Builds a dense 0/1 trace from busy flags.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `flags` is empty.
    pub fn from_bools(flags: &[bool]) -> Result<Self, SerrError> {
        DenseTrace::new(flags.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
    }

    /// Run-length-compresses into an [`IntervalTrace`] (exact with respect
    /// to the *stored* `f32` values, which widen losslessly to `f64`; the
    /// one rounding step happened in [`DenseTrace::new`] — see the rounding
    /// contract on [`DenseTrace`]).
    #[must_use]
    pub fn compress(&self) -> IntervalTrace {
        let levels: Vec<f64> = self.values.iter().map(|&v| f64::from(v)).collect();
        IntervalTrace::from_levels(&levels).expect("dense trace is non-empty and validated")
    }

    /// Number of cycles stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false by construction; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl VulnerabilityTrace for DenseTrace {
    fn period_cycles(&self) -> u64 {
        self.values.len() as u64
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        let c = (cycle % self.period_cycles()) as usize;
        f64::from(self.values[c])
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        let n = self.values.len() as u64;
        assert!(r <= n, "cycle {r} beyond period {n}");
        if r == n {
            return self.total;
        }
        let r = r as usize;
        let block = r / BLOCK;
        let base = self.block_prefix[block];
        let local: f64 = self.values[block * BLOCK..r].iter().map(|&v| f64::from(v)).sum();
        base + local
    }

    fn breakpoints(&self) -> Vec<u64> {
        // Merge runs of equal values; always terminates with the period.
        let mut out = Vec::new();
        for (i, w) in self.values.windows(2).enumerate() {
            if w[0] != w[1] {
                out.push(i as u64 + 1);
            }
        }
        out.push(self.values.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_matches_naive() {
        let values: Vec<f64> = (0..10_000).map(|i| ((i % 7) as f64) / 7.0).collect();
        let t = DenseTrace::new(values.clone()).unwrap();
        for &r in &[0usize, 1, 4095, 4096, 4097, 9_999, 10_000] {
            let naive: f64 = values[..r].iter().map(|&v| v as f32 as f64).sum();
            assert!(
                (t.cumulative_within_period(r as u64) - naive).abs() < 1e-9,
                "mismatch at r={r}"
            );
        }
    }

    #[test]
    fn avf_of_alternating_trace() {
        let t = DenseTrace::from_bools(&[true, false].repeat(500)).unwrap();
        assert_eq!(t.avf(), 0.5);
        assert_eq!(t.len(), 1000);
        assert!(!t.is_empty());
    }

    #[test]
    fn compress_preserves_semantics() {
        let values: Vec<f64> = (0..1000).map(|i| if i % 100 < 30 { 1.0 } else { 0.25 }).collect();
        let dense = DenseTrace::new(values).unwrap();
        let compressed = dense.compress();
        assert_eq!(dense.period_cycles(), compressed.period_cycles());
        assert!((dense.avf() - compressed.avf()).abs() < 1e-12);
        for c in (0..1000).step_by(13) {
            assert_eq!(dense.vulnerability_at(c), compressed.vulnerability_at(c));
        }
        // 10 alternating runs per 100 cycles -> 20 segments + wraparound merge.
        assert!(compressed.segment_count() <= 20);
    }

    #[test]
    fn rejects_invalid() {
        assert!(DenseTrace::new(vec![]).is_err());
        assert!(DenseTrace::new(vec![0.5, 1.5]).is_err());
        assert!(DenseTrace::new(vec![-0.5]).is_err());
    }

    #[test]
    fn rounding_contract_queries_answer_from_nearest_f32() {
        // 0.1 and 0.3 are not representable as f32; 1.0 - 1ulp rounds *up*
        // to exactly 1.0f32 and must stay valid.
        let just_below_one = f64::from_bits(1.0f64.to_bits() - 1);
        let t = DenseTrace::new(vec![0.1, just_below_one, 0.3]).unwrap();
        assert_eq!(t.vulnerability_at(0), f64::from(0.1f32));
        assert_eq!(t.vulnerability_at(1), 1.0);
        assert_eq!(t.vulnerability_at(2), f64::from(0.3f32));
        // AVF and cumulative sums are over the rounded values too.
        let want_avf = (f64::from(0.1f32) + 1.0 + f64::from(0.3f32)) / 3.0;
        assert!((t.avf() - want_avf).abs() < 1e-15);
        assert_eq!(t.cumulative_within_period(1), f64::from(0.1f32));
        // compress() is exact over the stored values, not the f64 input.
        let c = t.compress();
        for cyc in 0..3u64 {
            assert_eq!(c.vulnerability_at(cyc), t.vulnerability_at(cyc), "cycle {cyc}");
        }
    }

    #[test]
    fn wraps_modulo_period() {
        let t = DenseTrace::new(vec![0.1, 0.9]).unwrap();
        assert!((t.vulnerability_at(0) - 0.1).abs() < 1e-7);
        assert!((t.vulnerability_at(3) - 0.9).abs() < 1e-7);
        assert!((t.vulnerability_at(1_000_000) - 0.1).abs() < 1e-7);
    }
}
