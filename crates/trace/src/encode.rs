//! Compact binary encoding of interval traces.
//!
//! Simulated masking traces are expensive to produce (minutes of detailed
//! timing simulation); this module lets benchmark harnesses cache them on
//! disk. The format is deliberately simple: a magic/version header, a
//! segment count, then `(u64 length, f64 vulnerability)` pairs, all
//! little-endian.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serr_types::SerrError;

use crate::{IntervalTrace, Segment};

const MAGIC: &[u8; 4] = b"SERT";
const VERSION: u8 = 1;

/// Serializes an [`IntervalTrace`] to the compact binary format.
///
/// ```
/// use serr_trace::{decode_interval_trace, encode_interval_trace, IntervalTrace};
/// let t = IntervalTrace::busy_idle(10, 20).unwrap();
/// let bytes = encode_interval_trace(&t);
/// assert_eq!(decode_interval_trace(&bytes).unwrap(), t);
/// ```
#[must_use]
pub fn encode_interval_trace(trace: &IntervalTrace) -> Bytes {
    let segs: Vec<Segment> = trace.segments().collect();
    let mut buf = BytesMut::with_capacity(4 + 1 + 8 + segs.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(segs.len() as u64);
    for s in segs {
        buf.put_u64_le(s.len);
        buf.put_f64_le(s.vulnerability);
    }
    buf.freeze()
}

/// Deserializes a trace produced by [`encode_interval_trace`].
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] on a bad magic, unsupported version,
/// truncated input, or invalid segment contents.
pub fn decode_interval_trace(mut bytes: &[u8]) -> Result<IntervalTrace, SerrError> {
    if bytes.len() < 13 {
        return Err(SerrError::invalid_trace("encoded trace truncated before header"));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SerrError::invalid_trace("bad magic in encoded trace"));
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(SerrError::invalid_trace(format!("unsupported trace version {version}")));
    }
    let count = bytes.get_u64_le();
    let need = (count as usize)
        .checked_mul(16)
        .ok_or_else(|| SerrError::invalid_trace("segment count overflows"))?;
    if bytes.remaining() != need {
        return Err(SerrError::invalid_trace(format!(
            "expected {need} bytes of segments, found {}",
            bytes.remaining()
        )));
    }
    let mut segments = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = bytes.get_u64_le();
        let v = bytes.get_f64_le();
        segments.push(Segment::new(len, v)?);
    }
    IntervalTrace::from_segments(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let t = IntervalTrace::busy_idle(100, 50).unwrap();
        let enc = encode_interval_trace(&t);
        assert_eq!(decode_interval_trace(&enc).unwrap(), t);
    }

    #[test]
    fn roundtrip_fractional_levels() {
        let levels: Vec<f64> = (0..257).map(|i| (i % 17) as f64 / 16.0).collect();
        let t = IntervalTrace::from_levels(&levels).unwrap();
        let enc = encode_interval_trace(&t);
        let dec = decode_interval_trace(&enc).unwrap();
        assert_eq!(dec, t);
    }

    #[test]
    fn rejects_corruption() {
        let t = IntervalTrace::busy_idle(4, 4).unwrap();
        let enc = encode_interval_trace(&t).to_vec();

        // Truncated.
        assert!(decode_interval_trace(&enc[..enc.len() - 1]).is_err());
        assert!(decode_interval_trace(&enc[..5]).is_err());
        assert!(decode_interval_trace(&[]).is_err());

        // Bad magic.
        let mut bad = enc.clone();
        bad[0] = b'X';
        assert!(decode_interval_trace(&bad).is_err());

        // Bad version.
        let mut bad = enc.clone();
        bad[4] = 99;
        assert!(decode_interval_trace(&bad).is_err());

        // Vulnerability out of range.
        let mut bad = enc;
        let vuln_offset = 4 + 1 + 8 + 8;
        bad[vuln_offset..vuln_offset + 8].copy_from_slice(&2.0f64.to_le_bytes());
        assert!(decode_interval_trace(&bad).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let t = IntervalTrace::busy_idle(4, 4).unwrap();
        let mut enc = encode_interval_trace(&t).to_vec();
        enc.push(0);
        assert!(decode_interval_trace(&enc).is_err());
    }
}
