//! The [`VulnerabilityTrace`] abstraction.

use std::sync::Arc;

/// A periodic per-cycle vulnerability function `v(c) ∈ [0, 1]`.
///
/// `v(c)` is the probability that a raw error event striking the component in
/// cycle `c` causes a program-visible failure (is *not* architecturally
/// masked). The trace repeats with period [`period_cycles`], modeling the
/// paper's infinitely looping workload.
///
/// Implementors must guarantee:
///
/// * `period_cycles() > 0`;
/// * `vulnerability_at(c) ∈ [0, 1]` for all `c` (callers pass absolute cycle
///   counts; implementations reduce modulo the period);
/// * `cumulative_within_period(r)` equals `Σ_{c < r} v(c)` for
///   `r ≤ period_cycles()`, and is therefore monotone with
///   `cumulative_within_period(period_cycles()) == avf() × period`.
///
/// [`period_cycles`]: VulnerabilityTrace::period_cycles
pub trait VulnerabilityTrace: Send + Sync {
    /// The iteration length `L` in cycles.
    fn period_cycles(&self) -> u64;

    /// Vulnerability of the cycle `cycle mod period`.
    fn vulnerability_at(&self, cycle: u64) -> f64;

    /// `Σ_{c < r} v(c)` for `r` **within** one period (`0 ≤ r ≤ L`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `r > period_cycles()`.
    fn cumulative_within_period(&self, r: u64) -> f64;

    /// The architecture vulnerability factor: the average of `v` over the
    /// period (paper Section 2.2 — "the percentage of time the component
    /// contains ACE bits").
    fn avf(&self) -> f64 {
        self.cumulative_within_period(self.period_cycles()) / self.period_cycles() as f64
    }

    /// Cumulative vulnerability over an arbitrary span of `cycles` from the
    /// start of the trace: `k·U(L) + U(r)` where `cycles = k·L + r`.
    ///
    /// Returned as an `f64` count of "vulnerable cycles"; exact while the
    /// total stays below 2⁵³.
    fn cumulative_vulnerability(&self, cycles: u64) -> f64 {
        let period = self.period_cycles();
        let k = cycles / period;
        let r = cycles % period;
        k as f64 * self.cumulative_within_period(period) + self.cumulative_within_period(r)
    }

    /// True if every cycle is fully masked (`AVF = 0`): the component can
    /// never fail, and MTTF is undefined.
    fn is_never_vulnerable(&self) -> bool {
        self.avf() == 0.0
    }

    /// Sorted, strictly increasing cycle offsets at which the vulnerability
    /// may change, ending with `period_cycles()`. Between consecutive
    /// breakpoints the vulnerability is constant, which lets analytic
    /// solvers integrate the survival function in closed form per span.
    fn breakpoints(&self) -> Vec<u64>;

    /// The survival-function integrals that determine the exact renewal
    /// MTTF for a component with per-cycle raw error rate `lambda_cycle`:
    /// returns `(∫₀ᴸ e^{−λU(s)} ds, U(L))` where `U(s)` is the cumulative
    /// vulnerability and `L` the period (both in cycle units).
    ///
    /// The default implementation integrates span-by-span over
    /// [`breakpoints`]; representations whose breakpoint list would be
    /// astronomically long (e.g. a trace tiled millions of times, like the
    /// paper's `combined` workload) override this with a closed form.
    ///
    /// # Panics
    ///
    /// May panic if `lambda_cycle` is not positive.
    ///
    /// [`breakpoints`]: VulnerabilityTrace::breakpoints
    fn survival_weight(&self, lambda_cycle: f64) -> (f64, f64) {
        assert!(lambda_cycle > 0.0, "per-cycle rate must be positive");
        // Numerically stable 1 − e^{−x}.
        let omen = |x: f64| -(-x).exp_m1();
        let mut integral = 0.0f64;
        let mut start = 0u64;
        let mut u0 = 0.0f64;
        for end in self.breakpoints() {
            let delta = (end - start) as f64;
            let v = self.vulnerability_at(start);
            let head = (-lambda_cycle * u0).exp();
            if v > 0.0 {
                integral += head * omen(lambda_cycle * v * delta) / (lambda_cycle * v);
            } else {
                integral += head * delta;
            }
            u0 += v * delta;
            start = end;
        }
        (integral, u0)
    }

    /// Structural decomposition for representations built by tiling other
    /// traces (e.g. [`crate::ConcatTrace`]): the ordered `(part, tiles)`
    /// list, or `None` for flat traces. Estimators that fold per-cycle
    /// quantities (like SoftArch's block algebra) use this to handle
    /// day-scale tiled workloads in closed form instead of enumerating
    /// breakpoints.
    fn tiling(&self) -> Option<Vec<(Arc<dyn VulnerabilityTrace>, u64)>> {
        None
    }

    /// An upper bound on `breakpoints().len()` — the number of
    /// constant-vulnerability spans in one period — that must be cheap to
    /// compute (no span enumeration). [`crate::CompiledTrace::compile`]
    /// consults it to decide whether a trace can be flattened without
    /// materializing an astronomically long span list (a day-scale
    /// [`crate::ConcatTrace`] tiles a benchmark trace tens of millions of
    /// times). The default is the period itself: one span per cycle is
    /// always an upper bound. Representations with compact structure
    /// override this with their true span count.
    fn span_count_hint(&self) -> u64 {
        self.period_cycles()
    }

    /// True if the vulnerability is exactly `0.0` or `1.0` at every cycle
    /// (a pure busy/idle trace). The Monte Carlo sampler uses this to skip
    /// the Bernoulli masking draw on the hot path; `false` is always a
    /// correct (conservative) answer and is the default, because deciding
    /// it may cost a scan. [`crate::CompiledTrace`] precomputes it once.
    fn is_binary(&self) -> bool {
        false
    }
}

impl<T: VulnerabilityTrace + ?Sized> VulnerabilityTrace for &T {
    fn period_cycles(&self) -> u64 {
        (**self).period_cycles()
    }
    fn vulnerability_at(&self, cycle: u64) -> f64 {
        (**self).vulnerability_at(cycle)
    }
    fn cumulative_within_period(&self, r: u64) -> f64 {
        (**self).cumulative_within_period(r)
    }
    fn avf(&self) -> f64 {
        (**self).avf()
    }
    fn breakpoints(&self) -> Vec<u64> {
        (**self).breakpoints()
    }
    fn survival_weight(&self, lambda_cycle: f64) -> (f64, f64) {
        (**self).survival_weight(lambda_cycle)
    }
    fn tiling(&self) -> Option<Vec<(Arc<dyn VulnerabilityTrace>, u64)>> {
        (**self).tiling()
    }
    fn span_count_hint(&self) -> u64 {
        (**self).span_count_hint()
    }
    fn is_binary(&self) -> bool {
        (**self).is_binary()
    }
}

impl<T: VulnerabilityTrace + ?Sized> VulnerabilityTrace for std::sync::Arc<T> {
    fn period_cycles(&self) -> u64 {
        (**self).period_cycles()
    }
    fn vulnerability_at(&self, cycle: u64) -> f64 {
        (**self).vulnerability_at(cycle)
    }
    fn cumulative_within_period(&self, r: u64) -> f64 {
        (**self).cumulative_within_period(r)
    }
    fn avf(&self) -> f64 {
        (**self).avf()
    }
    fn breakpoints(&self) -> Vec<u64> {
        (**self).breakpoints()
    }
    fn survival_weight(&self, lambda_cycle: f64) -> (f64, f64) {
        (**self).survival_weight(lambda_cycle)
    }
    fn tiling(&self) -> Option<Vec<(Arc<dyn VulnerabilityTrace>, u64)>> {
        (**self).tiling()
    }
    fn span_count_hint(&self) -> u64 {
        (**self).span_count_hint()
    }
    fn is_binary(&self) -> bool {
        (**self).is_binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalTrace;
    use std::sync::Arc;

    #[test]
    fn cumulative_over_multiple_periods() {
        let t = IntervalTrace::busy_idle(2, 2).unwrap();
        // Period 4, U(L) = 2.
        assert_eq!(t.cumulative_vulnerability(0), 0.0);
        assert_eq!(t.cumulative_vulnerability(4), 2.0);
        assert_eq!(t.cumulative_vulnerability(9), 4.0 + 1.0);
        assert_eq!(t.cumulative_vulnerability(11), 4.0 + 2.0);
    }

    #[test]
    fn trait_object_and_smart_pointer_forwarding() {
        let t = IntervalTrace::busy_idle(1, 3).unwrap();
        let by_ref: &dyn VulnerabilityTrace = &t;
        assert_eq!(by_ref.avf(), 0.25);
        let arc: Arc<dyn VulnerabilityTrace> = Arc::new(t);
        assert_eq!(arc.avf(), 0.25);
        assert_eq!(arc.period_cycles(), 4);
        assert_eq!(arc.vulnerability_at(4), 1.0);
        assert_eq!(arc.cumulative_within_period(2), 1.0);
        assert!(!arc.is_never_vulnerable());
    }

    #[test]
    fn never_vulnerable_detection() {
        let t = IntervalTrace::constant(10, 0.0).unwrap();
        assert!(t.is_never_vulnerable());
        let t = IntervalTrace::constant(10, 0.5).unwrap();
        assert!(!t.is_never_vulnerable());
    }
}
