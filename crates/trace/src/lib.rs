//! Masking (vulnerability) traces for architecture-level soft error analysis.
//!
//! A *masking trace* records, for each cycle of a workload's repeating
//! iteration, the probability that a raw soft error striking the component in
//! that cycle is **not** masked (paper Section 4: "a masking trace that
//! indicates, for each system component, whether a raw error in a given cycle
//! would be masked"). We generalize the paper's boolean notion to a
//! *vulnerability* in `[0, 1]` per cycle so that:
//!
//! * busy/idle functional units are the special case `{0, 1}`;
//! * the register file's model (errors strike 256 entries uniformly, only
//!   live entries fail) is `live(t)/256`;
//! * a multi-unit processor is a rate-weighted composition of unit traces.
//!
//! Three representations are provided behind the [`VulnerabilityTrace`]
//! trait:
//!
//! * [`DenseTrace`] — one value per cycle; what a timing simulator emits.
//! * [`IntervalTrace`] — run-length encoded with prefix sums; `O(log n)`
//!   queries, compact enough for day/week-scale periods (10¹⁴ cycles).
//! * [`CompositeTrace`] — rate-weighted combination of unit traces into a
//!   processor-level trace.
//! * [`CompiledTrace`] — a flat, bucket-indexed lowering of any of the
//!   above with `O(1)` point queries; what the Monte Carlo hot loop runs
//!   against.
//!
//! All traces are periodic: the paper assumes "the workload runs in an
//! infinite loop with similar iterations of length L" (Section 3,
//! assumption 2).
//!
//! # Example
//!
//! ```
//! use serr_trace::{IntervalTrace, VulnerabilityTrace};
//!
//! // A component busy for the first 3 cycles of every 8-cycle iteration.
//! let t = IntervalTrace::busy_idle(3, 5).unwrap();
//! assert_eq!(t.period_cycles(), 8);
//! assert_eq!(t.vulnerability_at(1), 1.0);
//! assert_eq!(t.vulnerability_at(5), 0.0);
//! assert_eq!(t.avf(), 3.0 / 8.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compiled;
mod compose;
mod concat;
mod dense;
mod encode;
mod interval;
mod layered;
mod scale;
mod shift;
mod traits;
mod transform;

pub use compiled::CompiledTrace;
pub use compose::CompositeTrace;
pub use concat::ConcatTrace;
pub use dense::DenseTrace;
pub use encode::{decode_interval_trace, encode_interval_trace};
pub use interval::{IntervalTrace, IntervalTraceBuilder, Segment};
pub use layered::BitLayeredTrace;
pub use scale::ScaledTrace;
pub use shift::ShiftedTrace;
pub use traits::VulnerabilityTrace;
pub use transform::{Transform, TransformPipeline, RAMP_STEPS};

#[cfg(test)]
mod proptests;
