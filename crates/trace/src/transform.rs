//! Protection-model transforms: trace → trace rewrites for ECC coverage,
//! periodic scrubbing, and delayed error reporting.
//!
//! A [`Transform`] rewrites a vulnerability trace into the trace an
//! architecture *with that protection mechanism* would exhibit, so every
//! estimator (renewal, SoftArch, Monte Carlo) prices the mechanism without
//! changing a line: the transformed trace is just another
//! [`VulnerabilityTrace`]. Transforms compose left-to-right through a
//! [`TransformPipeline`] and run **before** [`CompiledTrace`] compilation —
//! the output is an ordinary [`IntervalTrace`], so the batched inversion
//! sampler's `O(1)` hot path never sees a transform at query time.
//!
//! The three mechanisms (and the related work motivating them):
//!
//! * [`Transform::EccSecDed`] — single-error-correct/double-error-detect
//!   coding over `word_bits`-bit words. A raw error in one bit is corrected
//!   unless a second bit of the same word is simultaneously vulnerable, so
//!   `v ↦ v · (1 − (1 − v)^(word_bits−1))`: quadratic suppression
//!   `≈ (word_bits−1)·v²` for small `v`, and — a finding the experiments
//!   lean on — **no** protection at `v = 1`, i.e. ECC is invisible on the
//!   paper's binary busy/idle traces.
//! * [`Transform::Scrub`] — periodic scrubbing with interval `T` cycles:
//!   accumulated state is rewritten at every scrub boundary, so effective
//!   vulnerability is zeroed there and re-accrues linearly,
//!   `v(c) ↦ v(c) · ((c mod T)/T)`, discretized as a mass-preserving
//!   staircase ([`RAMP_STEPS`] steps per span×interval piece). A constant
//!   trace's AVF exactly halves.
//! * [`Transform::DelayReport`] — delayed error reporting with window `d`:
//!   an error striking cycle `c` only matters if the state is still live
//!   when reporting fires at `c + d`, so `v'(c) = v(c + d)` for
//!   `c < L − d` and `0` in the final `d` cycles of the period (those
//!   strikes are overwritten by the next iteration before they report).
//!
//! All rewrites are pure segment-vector passes: deterministic, independent
//! of thread count, and value-monotone (`v' ≤ v` pointwise for ECC and
//! scrubbing; delay is a rearrangement that only removes mass), which is
//! what lets the CI smoke assert protected MTTF ≥ baseline.

use std::fmt;
use std::sync::Arc;

use serr_types::SerrError;

use crate::{CompiledTrace, IntervalTrace, IntervalTraceBuilder, VulnerabilityTrace};

/// Sub-steps used to discretize the scrubbing ramp inside each
/// span×scrub-interval piece. Each step carries the exact average of the
/// linear ramp over its cycles (midpoint rule, exact for linear functions),
/// so the staircase preserves vulnerability mass per piece while bounding
/// the output segment count.
pub const RAMP_STEPS: u64 = 16;

/// One protection mechanism as a trace rewrite. See the module docs for
/// the semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Transform {
    /// Leaves the trace untouched (useful as a pipeline placeholder; an
    /// all-identity pipeline is a guaranteed zero-cost no-op).
    Identity,
    /// SEC-DED ECC over words of `word_bits` bits (`≥ 2`).
    EccSecDed {
        /// Protected word width in bits, including check bits' coverage.
        word_bits: u32,
    },
    /// Periodic scrubbing every `interval_cycles` cycles (`> 0`).
    Scrub {
        /// Scrub interval in cycles. The ramp phase resets at the period
        /// start (the scrubber is modeled as synchronized with the
        /// workload iteration).
        interval_cycles: u64,
    },
    /// Delayed error reporting with a `window_cycles` reporting window
    /// (must be smaller than the trace period at application time).
    DelayReport {
        /// Reporting delay in cycles.
        window_cycles: u64,
    },
}

impl Transform {
    /// Validates the variant's parameters.
    ///
    /// Period-dependent checks (delay window vs. period) happen at
    /// application time; this catches the unconditionally invalid shapes.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] for `word_bits < 2` or a zero
    /// scrub interval.
    pub fn validate(&self) -> Result<(), SerrError> {
        match *self {
            Transform::Identity | Transform::DelayReport { .. } => Ok(()),
            Transform::EccSecDed { word_bits } => {
                if word_bits < 2 {
                    return Err(SerrError::invalid_trace(format!(
                        "ecc word width must cover at least 2 bits, got {word_bits}"
                    )));
                }
                Ok(())
            }
            Transform::Scrub { interval_cycles } => {
                if interval_cycles == 0 {
                    return Err(SerrError::invalid_trace("scrub interval must be positive"));
                }
                Ok(())
            }
        }
    }

    /// Rewrites one interval trace. Deterministic and single-threaded; the
    /// output period always equals the input period.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] for invalid parameters (see
    /// [`Transform::validate`]), a delay window not smaller than the
    /// period, or a scrub rewrite whose staircase would exceed the
    /// [`CompiledTrace::MAX_SEGMENTS`] compilation cap.
    pub fn apply(&self, trace: &IntervalTrace) -> Result<IntervalTrace, SerrError> {
        self.validate()?;
        match *self {
            Transform::Identity => Ok(trace.clone()),
            Transform::EccSecDed { word_bits } => apply_ecc(trace, word_bits),
            Transform::Scrub { interval_cycles } => apply_scrub(trace, interval_cycles),
            Transform::DelayReport { window_cycles } => apply_delay(trace, window_cycles),
        }
    }
}

impl fmt::Display for Transform {
    /// Canonical `kind:param` spelling, matching the CLI `--protect`
    /// grammar (used in config fingerprints and benchmark labels).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Transform::Identity => write!(f, "identity"),
            Transform::EccSecDed { word_bits } => write!(f, "ecc:{word_bits}"),
            Transform::Scrub { interval_cycles } => write!(f, "scrub:{interval_cycles}"),
            Transform::DelayReport { window_cycles } => write!(f, "delay:{window_cycles}"),
        }
    }
}

/// An ordered sequence of [`Transform`]s applied left-to-right.
///
/// The pipeline is the unit the rest of the system passes around: parsed
/// from the CLI `--protect` spec, recorded in experiment fingerprints, and
/// applied once per workload trace ahead of compilation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransformPipeline {
    stages: Vec<Transform>,
}

impl TransformPipeline {
    /// Builds a pipeline from stages, applied in the order given.
    #[must_use]
    pub fn new(stages: Vec<Transform>) -> Self {
        TransformPipeline { stages }
    }

    /// The empty pipeline (identical to `new(vec![])`).
    #[must_use]
    pub fn identity() -> Self {
        TransformPipeline::default()
    }

    /// True when applying the pipeline is guaranteed to be a no-op: no
    /// stages, or only [`Transform::Identity`] stages. This is the fast
    /// path [`TransformPipeline::apply`] takes for unprotected runs — the
    /// input trace is returned untouched, no materialization happens.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.stages.iter().all(|t| matches!(t, Transform::Identity))
    }

    /// The stages, in application order.
    #[must_use]
    pub fn stages(&self) -> &[Transform] {
        &self.stages
    }

    /// Rewrites an interval trace through every stage in order.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage's [`SerrError::InvalidTrace`].
    pub fn apply_interval(&self, trace: &IntervalTrace) -> Result<IntervalTrace, SerrError> {
        let mut current = trace.clone();
        for stage in &self.stages {
            current = stage.apply(&current)?;
        }
        Ok(current)
    }

    /// Rewrites any vulnerability trace: materializes it once into an
    /// [`IntervalTrace`] (refusing traces whose span structure is too
    /// large to enumerate), runs every stage as a segment-vector pass, and
    /// returns the result behind a fresh `Arc`.
    ///
    /// An identity pipeline returns the input `Arc` unchanged — zero cost
    /// for unprotected runs, and the guarantee behind the benchmark
    /// contract that transform plumbing adds nothing to the compile path.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] when the source trace reports
    /// more than [`CompiledTrace::MAX_SEGMENTS`] spans (such traces —
    /// e.g. astronomically tiled concatenations — cannot be rewritten
    /// span-by-span; protect their parts instead), or when a stage fails.
    pub fn apply(
        &self,
        trace: Arc<dyn VulnerabilityTrace>,
    ) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
        if self.is_identity() {
            return Ok(trace);
        }
        let materialized = materialize(trace.as_ref())?;
        let rewritten = self.apply_interval(&materialized)?;
        Ok(Arc::new(rewritten))
    }
}

impl fmt::Display for TransformPipeline {
    /// Comma-joined stage spellings (`ecc:64,scrub:4096`); `identity` when
    /// empty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stages.is_empty() {
            return write!(f, "identity");
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{stage}")?;
        }
        Ok(())
    }
}

/// Enumerates a trace's spans into an owned [`IntervalTrace`].
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] when the trace reports more spans
/// than [`CompiledTrace::MAX_SEGMENTS`] — the same refusal threshold the
/// compiler applies, surfaced as a typed error here because transforms are
/// an explicit user request rather than a silent optimization.
fn materialize(trace: &dyn VulnerabilityTrace) -> Result<IntervalTrace, SerrError> {
    if trace.span_count_hint() > CompiledTrace::MAX_SEGMENTS {
        return Err(SerrError::invalid_trace(format!(
            "trace reports {} spans, beyond the {}-span transform limit; \
             apply protection to the constituent traces instead",
            trace.span_count_hint(),
            CompiledTrace::MAX_SEGMENTS
        )));
    }
    let mut builder = IntervalTraceBuilder::new();
    let mut start = 0u64;
    for end in trace.breakpoints() {
        builder.push_cycles(end - start, trace.vulnerability_at(start))?;
        start = end;
    }
    builder.finish()
}

/// SEC-DED rewrite: `v ↦ v · (1 − (1 − v)^(word_bits−1))`, per segment.
fn apply_ecc(trace: &IntervalTrace, word_bits: u32) -> Result<IntervalTrace, SerrError> {
    let others = i32::try_from(word_bits - 1)
        .map_err(|_| SerrError::invalid_trace(format!("ecc word width {word_bits} too large")))?;
    let mut builder = IntervalTraceBuilder::new();
    for seg in trace.segments() {
        let v = seg.vulnerability;
        let masked = (v * (1.0 - (1.0 - v).powi(others))).clamp(0.0, 1.0);
        builder.push_cycles(seg.len, masked)?;
    }
    builder.finish()
}

/// Scrubbing rewrite: staircase discretization of
/// `v(c) · ((c mod T)/T)`, cutting spans at scrub boundaries and
/// subdividing each non-zero piece into [`RAMP_STEPS`] mass-preserving
/// steps. Zero-valued spans pass through as single segments.
fn apply_scrub(trace: &IntervalTrace, interval: u64) -> Result<IntervalTrace, SerrError> {
    let period = trace.period_cycles();
    // Segment budget: every span×interval piece expands to ≤ RAMP_STEPS
    // segments, and there are ≤ spans + period/interval pieces.
    let pieces = (trace.span_count_hint()).saturating_add(period / interval).saturating_add(1);
    if pieces.saturating_mul(RAMP_STEPS) > CompiledTrace::MAX_SEGMENTS {
        return Err(SerrError::invalid_trace(format!(
            "scrub interval {interval} over a {period}-cycle period needs more than {} \
             segments; choose a coarser interval",
            CompiledTrace::MAX_SEGMENTS
        )));
    }
    let mut builder = IntervalTraceBuilder::new();
    let mut start = 0u64;
    for seg in trace.segments() {
        let seg_end = start + seg.len;
        let mut pos = start;
        while pos < seg_end {
            let boundary = (pos - pos % interval).checked_add(interval).unwrap_or(u64::MAX);
            let piece_end = seg_end.min(boundary);
            if seg.vulnerability == 0.0 {
                builder.push_cycles(piece_end - pos, 0.0)?;
            } else {
                push_ramp_piece(&mut builder, pos, piece_end, interval, seg.vulnerability)?;
            }
            pos = piece_end;
        }
        start = seg_end;
    }
    builder.finish()
}

/// Emits the staircase for one piece `[p0, p1)` that lies entirely inside
/// a single scrub interval. Each step's value is the source vulnerability
/// times the exact average ramp height over the step's cycles.
fn push_ramp_piece(
    builder: &mut IntervalTraceBuilder,
    p0: u64,
    p1: u64,
    interval: u64,
    v: f64,
) -> Result<(), SerrError> {
    let len = p1 - p0;
    let steps = RAMP_STEPS.min(len);
    let base = len / steps;
    let extra = len % steps;
    let mut off = p0 % interval;
    for i in 0..steps {
        let step_len = base + u64::from(i < extra);
        let mid = (off as f64 + (off + step_len) as f64) / 2.0;
        let value = (v * (mid / interval as f64)).clamp(0.0, 1.0);
        builder.push_cycles(step_len, value)?;
        off += step_len;
    }
    Ok(())
}

/// Delayed-reporting rewrite: `v'(c) = v(c + d)` for `c < L − d`, zero in
/// the final `d` cycles. Implemented as a left rotation of the `[d, L)`
/// span content plus a zero tail.
fn apply_delay(trace: &IntervalTrace, window: u64) -> Result<IntervalTrace, SerrError> {
    let period = trace.period_cycles();
    if window >= period {
        return Err(SerrError::invalid_trace(format!(
            "reporting delay {window} must be smaller than the {period}-cycle period \
             (an error that never reports within an iteration has no defined MTTF)"
        )));
    }
    if window == 0 {
        return Ok(trace.clone());
    }
    let mut builder = IntervalTraceBuilder::new();
    let mut start = 0u64;
    for seg in trace.segments() {
        let end = start + seg.len;
        let lo = start.max(window);
        if end > lo {
            builder.push_cycles(end - lo, seg.vulnerability)?;
        }
        start = end;
    }
    builder.push_cycles(window, 0.0)?;
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcatTrace;

    fn levels(values: &[f64]) -> IntervalTrace {
        IntervalTrace::from_levels(values).unwrap()
    }

    #[test]
    fn identity_pipeline_returns_the_input_arc_untouched() {
        let src: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::busy_idle(1 << 20, 1 << 20).unwrap());
        for p in [TransformPipeline::identity(), TransformPipeline::new(vec![Transform::Identity])]
        {
            assert!(p.is_identity());
            let out = p.apply(src.clone()).unwrap();
            assert!(Arc::ptr_eq(&src, &out), "identity pipeline must not rebuild the trace");
        }
    }

    #[test]
    fn ecc_matches_the_coincidence_formula() {
        let v = 0.01f64;
        let src = IntervalTrace::constant(1_000, v).unwrap();
        let out = Transform::EccSecDed { word_bits: 64 }.apply(&src).unwrap();
        let want = v * (1.0 - (1.0 - v).powi(63));
        assert!((out.vulnerability_at(0) - want).abs() < 1e-15);
        // Quadratic suppression: far below the unprotected value.
        assert!(out.avf() < 0.64 * v && out.avf() > 0.0);
    }

    #[test]
    fn ecc_is_a_noop_on_binary_traces() {
        // v = 1 means a coincident second-bit error is certain: SEC-DED
        // cannot correct, so busy/idle traces pass through unchanged.
        let src = IntervalTrace::busy_idle(100, 300).unwrap();
        let out = Transform::EccSecDed { word_bits: 64 }.apply(&src).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn scrub_halves_a_constant_trace_avf() {
        // Interval divides the period and each interval splits into equal
        // ramp steps: the staircase mass is exact, AVF = v/2.
        let src = IntervalTrace::constant(1 << 20, 0.8).unwrap();
        let out = Transform::Scrub { interval_cycles: 4096 }.apply(&src).unwrap();
        assert!((out.avf() - 0.4).abs() < 1e-12, "avf {}", out.avf());
        assert_eq!(out.period_cycles(), src.period_cycles());
        // The ramp restarts at every scrub boundary.
        assert!(out.vulnerability_at(4096) < out.vulnerability_at(4095));
    }

    #[test]
    fn scrub_keeps_zero_spans_compact() {
        let src = IntervalTrace::busy_idle(1 << 16, 1 << 20).unwrap();
        let out = Transform::Scrub { interval_cycles: 1 << 10 }.apply(&src).unwrap();
        for cyc in [1u64 << 16, 1 << 18, (1 << 20) - 1] {
            assert_eq!(out.vulnerability_at((1 << 16) + cyc % (1 << 20)), 0.0);
        }
        // The idle span contributes O(1) segments, not RAMP_STEPS per interval.
        assert!(out.segment_count() as u64 <= RAMP_STEPS * ((1 << 6) + 2));
    }

    #[test]
    fn delay_shifts_left_and_zeroes_the_tail() {
        let src = levels(&[0.25, 1.0, 0.0, 0.0, 0.5]);
        let out = Transform::DelayReport { window_cycles: 1 }.apply(&src).unwrap();
        assert_eq!(out.period_cycles(), 5);
        for c in 0..4u64 {
            assert_eq!(out.vulnerability_at(c), src.vulnerability_at(c + 1), "cycle {c}");
        }
        assert_eq!(out.vulnerability_at(4), 0.0);
    }

    #[test]
    fn delay_rejects_windows_reaching_the_period() {
        let src = levels(&[1.0, 0.0]);
        for w in [2u64, 3, 100] {
            let err = Transform::DelayReport { window_cycles: w }.apply(&src).unwrap_err();
            assert!(matches!(err, SerrError::InvalidTrace { .. }));
        }
        let out = Transform::DelayReport { window_cycles: 0 }.apply(&src).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn parameter_validation_rejects_degenerate_shapes() {
        assert!(Transform::EccSecDed { word_bits: 1 }.validate().is_err());
        assert!(Transform::Scrub { interval_cycles: 0 }.validate().is_err());
        assert!(Transform::EccSecDed { word_bits: 2 }.validate().is_ok());
    }

    #[test]
    fn every_transform_is_value_monotone() {
        let src = levels(&[0.0, 0.3, 0.9, 1.0, 0.15, 0.6, 0.0, 0.45]);
        let transforms = [
            Transform::EccSecDed { word_bits: 8 },
            Transform::Scrub { interval_cycles: 3 },
            Transform::DelayReport { window_cycles: 2 },
        ];
        for t in transforms {
            let out = t.apply(&src).unwrap();
            assert!(out.avf() <= src.avf() + 1e-15, "{t} raised AVF");
        }
    }

    #[test]
    fn ecc_and_delay_commute_bit_for_bit() {
        let src = levels(&[0.1, 0.8, 0.0, 0.4, 0.4, 0.9, 0.2]);
        let ecc = Transform::EccSecDed { word_bits: 16 };
        let delay = Transform::DelayReport { window_cycles: 3 };
        let a = delay.apply(&ecc.apply(&src).unwrap()).unwrap();
        let b = ecc.apply(&delay.apply(&src).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pipeline_applies_stages_in_order() {
        let src = levels(&[0.5, 0.5, 0.0, 1.0]);
        let scrub = Transform::Scrub { interval_cycles: 2 };
        let ecc = Transform::EccSecDed { word_bits: 32 };
        let piped = TransformPipeline::new(vec![scrub, ecc]).apply_interval(&src).unwrap();
        let manual = ecc.apply(&scrub.apply(&src).unwrap()).unwrap();
        assert_eq!(piped, manual);
        assert_eq!(TransformPipeline::new(vec![scrub, ecc]).to_string(), "scrub:2,ecc:32");
    }

    #[test]
    fn refuses_traces_too_large_to_materialize() {
        let unit: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(3, 5).unwrap());
        let tiled: Arc<dyn VulnerabilityTrace> =
            Arc::new(ConcatTrace::new(vec![(unit, 10_000_000)]).unwrap());
        let p = TransformPipeline::new(vec![Transform::EccSecDed { word_bits: 64 }]);
        let Err(err) = p.apply(tiled) else { panic!("oversized trace must refuse transforms") };
        assert!(matches!(err, SerrError::InvalidTrace { .. }));
        assert!(err.to_string().contains("transform limit"), "message: {err}");
    }

    #[test]
    fn scrub_refuses_interval_explosions() {
        // A tiny interval over a huge period would need billions of ramp
        // steps; the rewrite must refuse instead of allocating.
        let src = IntervalTrace::busy_idle(1 << 30, 1 << 30).unwrap();
        let err = Transform::Scrub { interval_cycles: 2 }.apply(&src).unwrap_err();
        assert!(matches!(err, SerrError::InvalidTrace { .. }));
    }
}
