//! Per-bit vulnerability layers over a shared period.

use std::fmt;
use std::sync::{Arc, OnceLock};

use serr_types::SerrError;

use crate::{CompiledTrace, IntervalTrace, IntervalTraceBuilder, VulnerabilityTrace};

/// N per-bit vulnerability layers over a shared period, presented to the
/// rest of the system as one scalar [`VulnerabilityTrace`].
///
/// The paper's pipeline models each structure as a single scalar
/// vulnerability stream; bit-level analyses (BEC-style) argue masking must
/// be resolved per bit. `BitLayeredTrace` holds both views: layer `b` is
/// the vulnerability trace of bit `b` (any [`VulnerabilityTrace`]), and
/// the scalar projection — the equal-weight mean across layers at every
/// cycle, i.e. the probability that a raw strike on a uniformly chosen bit
/// is unmasked — is computed lazily, cached, and used to answer every
/// trait query. Existing estimators therefore consume a layered trace
/// unchanged, while bit-resolved rewrites ([`BitLayeredTrace::ecc_secded`])
/// can exploit the per-layer structure the projection discards.
///
/// The projection is materialized at most once (a sorted union of the
/// layers' breakpoints, bounded by the same span cap as
/// [`CompiledTrace::MAX_SEGMENTS`], enforced at construction) and shared
/// across threads via [`OnceLock`] — concurrent first queries race only on
/// who stores the identical result, so answers are deterministic and
/// independent of thread count.
pub struct BitLayeredTrace {
    layers: Vec<Arc<dyn VulnerabilityTrace>>,
    period: u64,
    projection: OnceLock<IntervalTrace>,
}

impl fmt::Debug for BitLayeredTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitLayeredTrace")
            .field("layers", &self.layers.len())
            .field("period", &self.period)
            .field("projected", &self.projection.get().is_some())
            .finish()
    }
}

impl BitLayeredTrace {
    /// Builds a layered trace from per-bit layers.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `layers` is empty, the
    /// layers disagree on the period, or the combined span structure is
    /// too large to ever project (sum of span hints beyond
    /// [`CompiledTrace::MAX_SEGMENTS`]).
    pub fn new(layers: Vec<Arc<dyn VulnerabilityTrace>>) -> Result<Self, SerrError> {
        let Some(first) = layers.first() else {
            return Err(SerrError::invalid_trace("layered trace needs at least one layer"));
        };
        let period = first.period_cycles();
        for (i, layer) in layers.iter().enumerate() {
            if layer.period_cycles() != period {
                return Err(SerrError::invalid_trace(format!(
                    "layer {i} has period {}, layer 0 has {period}; \
                     layers must share one iteration length",
                    layer.period_cycles()
                )));
            }
        }
        let spans: u64 = layers.iter().map(|l| l.span_count_hint()).fold(0, u64::saturating_add);
        if spans > CompiledTrace::MAX_SEGMENTS {
            return Err(SerrError::invalid_trace(format!(
                "layers report {spans} combined spans, beyond the {}-span projection limit",
                CompiledTrace::MAX_SEGMENTS
            )));
        }
        Ok(BitLayeredTrace { layers, period, projection: OnceLock::new() })
    }

    /// Number of bit layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layer for bit `index`, or `None` past the end.
    #[must_use]
    pub fn layer(&self, index: usize) -> Option<&Arc<dyn VulnerabilityTrace>> {
        self.layers.get(index)
    }

    /// The breakpoint union across all layers: sorted, strictly
    /// increasing, ending with the period.
    fn union_breakpoints(&self) -> Vec<u64> {
        let mut union: Vec<u64> = self.layers.iter().flat_map(|l| l.breakpoints()).collect();
        union.sort_unstable();
        union.dedup();
        union
    }

    /// The cached scalar projection: at each cycle, the mean of the layer
    /// vulnerabilities (a uniformly targeted strike hits each bit with
    /// probability `1/N`).
    fn projection(&self) -> &IntervalTrace {
        self.projection.get_or_init(|| {
            let inv_n = 1.0 / self.layers.len() as f64;
            let mut builder = IntervalTraceBuilder::new();
            let mut start = 0u64;
            for end in self.union_breakpoints() {
                let mean: f64 =
                    self.layers.iter().map(|l| l.vulnerability_at(start)).sum::<f64>() * inv_n;
                builder
                    .push_cycles(end - start, mean.clamp(0.0, 1.0))
                    .expect("mean of [0,1] layer values is clamped into range");
                start = end;
            }
            builder.finish().expect("layers are non-empty, so at least one span exists")
        })
    }

    /// Bit-resolved SEC-DED rewrite: bit `b`'s contribution at cycle `c`
    /// survives only when at least one *other* bit of the word is
    /// simultaneously vulnerable (single-bit errors are corrected;
    /// double-bit coincidence windows are kept):
    ///
    /// `v'(c) = (1/N) · Σ_b v_b(c) · (1 − Π_{b'≠b} (1 − v_b'(c)))`
    ///
    /// With N identical layers this reduces exactly to the scalar
    /// [`crate::Transform::EccSecDed`] formula with `word_bits = N`; with
    /// heterogeneous layers it prices the coincidences the scalar
    /// projection cannot see. A single-layer word has no second bit, so
    /// every error is corrected and the result is all-zero.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if the rewritten values fail
    /// trace validation (unreachable for layers honoring the `[0, 1]`
    /// contract).
    pub fn ecc_secded(&self) -> Result<IntervalTrace, SerrError> {
        let inv_n = 1.0 / self.layers.len() as f64;
        let mut builder = IntervalTraceBuilder::new();
        let mut start = 0u64;
        for end in self.union_breakpoints() {
            let vs: Vec<f64> = self.layers.iter().map(|l| l.vulnerability_at(start)).collect();
            let mut unprotected = 0.0f64;
            for (b, &v) in vs.iter().enumerate() {
                let others_clear: f64 = vs
                    .iter()
                    .enumerate()
                    .filter(|&(b2, _)| b2 != b)
                    .map(|(_, &v2)| 1.0 - v2)
                    .product();
                unprotected += v * (1.0 - others_clear);
            }
            builder.push_cycles(end - start, (unprotected * inv_n).clamp(0.0, 1.0))?;
            start = end;
        }
        builder.finish()
    }
}

impl VulnerabilityTrace for BitLayeredTrace {
    fn period_cycles(&self) -> u64 {
        self.period
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        self.projection().vulnerability_at(cycle)
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        self.projection().cumulative_within_period(r)
    }

    fn breakpoints(&self) -> Vec<u64> {
        self.projection().breakpoints()
    }

    fn span_count_hint(&self) -> u64 {
        match self.projection.get() {
            Some(p) => p.span_count_hint(),
            // Not yet projected: the union is bounded by the sum of the
            // layers' own hints (each ≤ its claim by the trait contract).
            None => self.layers.iter().map(|l| l.span_count_hint()).fold(0, u64::saturating_add),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transform;

    fn layer(levels: &[f64]) -> Arc<dyn VulnerabilityTrace> {
        Arc::new(IntervalTrace::from_levels(levels).unwrap())
    }

    #[test]
    fn projection_is_the_mean_of_the_layers() {
        let t = BitLayeredTrace::new(vec![
            layer(&[1.0, 0.0, 0.0, 1.0]),
            layer(&[0.0, 0.0, 1.0, 1.0]),
            layer(&[0.5, 0.5, 0.5, 0.5]),
        ])
        .unwrap();
        assert_eq!(t.period_cycles(), 4);
        let want = [0.5, 1.0 / 6.0, 0.5, 2.5 / 3.0];
        for (c, &w) in want.iter().enumerate() {
            assert!((t.vulnerability_at(c as u64) - w).abs() < 1e-15, "cycle {c}");
        }
        assert!((t.avf() - want.iter().sum::<f64>() / 4.0).abs() < 1e-15);
        // The projection is cached: repeated queries agree bit-for-bit.
        assert_eq!(t.breakpoints(), t.breakpoints());
    }

    #[test]
    fn rejects_empty_and_mismatched_layers() {
        assert!(BitLayeredTrace::new(vec![]).is_err());
        let err =
            BitLayeredTrace::new(vec![layer(&[1.0, 0.0]), layer(&[1.0, 0.0, 0.0])]).unwrap_err();
        assert!(matches!(err, SerrError::InvalidTrace { .. }));
    }

    #[test]
    fn layered_ecc_reduces_to_the_scalar_formula_on_identical_layers() {
        let n = 8u32;
        let levels = [0.05, 0.3, 0.0, 0.9, 0.12];
        let t = BitLayeredTrace::new((0..n).map(|_| layer(&levels)).collect()).unwrap();
        let bitwise = t.ecc_secded().unwrap();
        let scalar = Transform::EccSecDed { word_bits: n }
            .apply(&IntervalTrace::from_levels(&levels).unwrap())
            .unwrap();
        assert_eq!(bitwise.period_cycles(), scalar.period_cycles());
        for c in 0..levels.len() as u64 {
            assert!(
                (bitwise.vulnerability_at(c) - scalar.vulnerability_at(c)).abs() < 1e-15,
                "cycle {c}: bitwise {} vs scalar {}",
                bitwise.vulnerability_at(c),
                scalar.vulnerability_at(c)
            );
        }
    }

    #[test]
    fn single_layer_ecc_corrects_everything() {
        let t = BitLayeredTrace::new(vec![layer(&[1.0, 0.5, 0.0])]).unwrap();
        let out = t.ecc_secded().unwrap();
        assert_eq!(out.avf(), 0.0);
        assert!(out.is_never_vulnerable());
    }

    #[test]
    fn heterogeneous_layers_expose_coincidence_structure() {
        // Two bits, vulnerable in disjoint windows: no double-bit
        // coincidences anywhere, so ECC removes everything — while the
        // scalar formula applied to the (nonzero) projection would not.
        let t =
            BitLayeredTrace::new(vec![layer(&[1.0, 0.0, 0.0, 0.0]), layer(&[0.0, 0.0, 1.0, 0.0])])
                .unwrap();
        assert!(t.avf() > 0.0);
        assert_eq!(t.ecc_secded().unwrap().avf(), 0.0);
    }

    #[test]
    fn estimator_facing_queries_work_through_the_trait_object() {
        let t: Arc<dyn VulnerabilityTrace> =
            Arc::new(BitLayeredTrace::new(vec![layer(&[1.0, 0.0]), layer(&[1.0, 1.0])]).unwrap());
        assert_eq!(t.vulnerability_at(0), 1.0);
        assert_eq!(t.vulnerability_at(1), 0.5);
        assert_eq!(t.cumulative_within_period(2), 1.5);
        let compiled = CompiledTrace::compile(&t).unwrap();
        compiled.verify().unwrap();
        assert_eq!(compiled.avf(), 0.75);
    }
}
