//! Phase-shifted view of a trace.

use std::sync::Arc;

use crate::VulnerabilityTrace;

/// A trace viewed with a cyclic phase offset: `v'(c) = v(c + shift)`.
///
/// The paper's cluster experiments assume every processor runs the workload
/// phase-aligned ("we assume all processors run the same workload"); shifting
/// per-component phases is the natural ablation of that assumption — with
/// random offsets, component idle windows no longer coincide and the SOFR
/// discrepancy washes out.
///
/// ```
/// use std::sync::Arc;
/// use serr_trace::{IntervalTrace, ShiftedTrace, VulnerabilityTrace};
///
/// let base = Arc::new(IntervalTrace::busy_idle(2, 2).unwrap());
/// let shifted = ShiftedTrace::new(base, 2);
/// // The busy window moved from cycles [0,2) to [2,4).
/// assert_eq!(shifted.vulnerability_at(0), 0.0);
/// assert_eq!(shifted.vulnerability_at(2), 1.0);
/// assert_eq!(shifted.avf(), 0.5);
/// ```
#[derive(Clone)]
pub struct ShiftedTrace {
    inner: Arc<dyn VulnerabilityTrace>,
    /// Offset reduced modulo the inner period.
    shift: u64,
}

impl ShiftedTrace {
    /// Wraps `inner` with a cyclic offset of `shift` cycles (reduced modulo
    /// the period).
    #[must_use]
    pub fn new(inner: Arc<dyn VulnerabilityTrace>, shift: u64) -> Self {
        let shift = shift % inner.period_cycles();
        ShiftedTrace { inner, shift }
    }

    /// The effective offset in cycles (already reduced).
    #[must_use]
    pub fn shift(&self) -> u64 {
        self.shift
    }
}

impl std::fmt::Debug for ShiftedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShiftedTrace")
            .field("shift", &self.shift)
            .field("period", &self.inner.period_cycles())
            .finish()
    }
}

impl VulnerabilityTrace for ShiftedTrace {
    fn period_cycles(&self) -> u64 {
        self.inner.period_cycles()
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        let period = self.period_cycles();
        self.inner.vulnerability_at((cycle % period + self.shift) % period)
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        // U'(r) = U(shift + r) − U(shift), with U extended periodically.
        self.inner.cumulative_vulnerability(self.shift + r)
            - self.inner.cumulative_vulnerability(self.shift)
    }

    fn breakpoints(&self) -> Vec<u64> {
        let period = self.period_cycles();
        let mut out: Vec<u64> = self
            .inner
            .breakpoints()
            .into_iter()
            .map(|b| (b + period - self.shift) % period)
            .filter(|&b| b != 0)
            .collect();
        out.push(period);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn span_count_hint(&self) -> u64 {
        // A nonzero shift can split the span containing the wrap point.
        self.inner.span_count_hint().saturating_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalTrace;

    fn base() -> Arc<dyn VulnerabilityTrace> {
        Arc::new(IntervalTrace::from_levels(&[1.0, 1.0, 0.5, 0.0, 0.0, 0.25]).unwrap())
    }

    #[test]
    fn zero_shift_is_identity() {
        let b = base();
        let s = ShiftedTrace::new(b.clone(), 0);
        for c in 0..6 {
            assert_eq!(s.vulnerability_at(c), b.vulnerability_at(c));
        }
        assert_eq!(s.cumulative_within_period(6), b.cumulative_within_period(6));
        assert_eq!(s.breakpoints().last(), Some(&6));
    }

    #[test]
    fn shift_rotates_pointwise() {
        let b = base();
        for shift in 0..12u64 {
            let s = ShiftedTrace::new(b.clone(), shift);
            assert_eq!(s.shift(), shift % 6);
            for c in 0..6 {
                assert_eq!(
                    s.vulnerability_at(c),
                    b.vulnerability_at((c + shift) % 6),
                    "shift={shift}, c={c}"
                );
            }
        }
    }

    #[test]
    fn avf_is_shift_invariant() {
        let b = base();
        for shift in 0..6u64 {
            let s = ShiftedTrace::new(b.clone(), shift);
            assert!((s.avf() - b.avf()).abs() < 1e-12, "shift={shift}");
        }
    }

    #[test]
    fn cumulative_matches_pointwise_sum() {
        let b = base();
        for shift in 0..6u64 {
            let s = ShiftedTrace::new(b.clone(), shift);
            let mut acc = 0.0;
            for r in 0..=6u64 {
                assert!(
                    (s.cumulative_within_period(r) - acc).abs() < 1e-12,
                    "shift={shift}, r={r}"
                );
                if r < 6 {
                    acc += s.vulnerability_at(r);
                }
            }
        }
    }

    #[test]
    fn breakpoints_delimit_constant_spans() {
        let b = base();
        for shift in 0..6u64 {
            let s = ShiftedTrace::new(b.clone(), shift);
            let bps = s.breakpoints();
            assert_eq!(*bps.last().unwrap(), 6);
            let mut start = 0u64;
            for &end in &bps {
                let v = s.vulnerability_at(start);
                for c in start..end {
                    assert_eq!(s.vulnerability_at(c), v, "shift={shift}, span [{start},{end})");
                }
                start = end;
            }
        }
    }
}
