//! Compiled vulnerability traces: the hot-loop representation.
//!
//! Every other representation in this crate optimizes for *construction*
//! (simulator output, day-scale synthesis, composition) and answers point
//! queries in `O(log n)` through at least one virtual call. The Monte Carlo
//! sampler, by contrast, issues one `vulnerability_at` per raw-error event —
//! hundreds of millions of times per sweep — so [`CompiledTrace`] lowers any
//! [`VulnerabilityTrace`] into a flat, query-optimized form once per run:
//!
//! * run-length segments (`ends`/`values`) with prefix sums, like
//!   [`crate::IntervalTrace`];
//! * a **bucketed phase→segment index**: the period is divided into
//!   2ᵏ-cycle buckets and each bucket records the index of the segment
//!   containing its first cycle, so a point query is one shift, one table
//!   read, and a scan over the (almost always 0 or 1) segment boundaries
//!   inside the bucket — `O(1)` instead of `partition_point`'s `O(log n)`;
//! * a **bucketed inverse (mass→segment) index** over the prefix sums,
//!   mirroring the phase index: the total vulnerability mass is divided
//!   into equal-width buckets and each bucket records where its first mass
//!   coordinate lands in the prefix table, so
//!   [`CompiledTrace::phase_at_cumulative`] — the inner loop of the
//!   inversion sampler, which turns an `Exp(1)` draw into a failing cycle —
//!   is also `O(1)` amortized;
//! * cached period / AVF / total cumulative vulnerability;
//! * a precomputed [`is_binary`](VulnerabilityTrace::is_binary) flag that
//!   lets the sampler skip the Bernoulli masking draw for 0/1 traces.
//!
//! The bucket table is capped at [`CompiledTrace::MAX_BUCKETS`] entries
//! (a few MiB) so day/week-scale periods (10¹⁴ cycles) stay cheap to index;
//! when a bucket then spans many segments, the query falls back to a binary
//! search *within that bucket's segment range*, which is still at worst the
//! old `O(log n)` and in practice far better.
//!
//! Compilation itself is guarded by
//! [`VulnerabilityTrace::span_count_hint`]: traces whose span list cannot be
//! materialized (a `combined` workload tiling a benchmark trace 10⁷ times)
//! report a huge hint and [`CompiledTrace::compile`] returns `None`, letting
//! callers keep the original representation.
//!
//! ```
//! use serr_trace::{CompiledTrace, IntervalTrace, VulnerabilityTrace};
//!
//! let source = IntervalTrace::busy_idle(25, 75).unwrap();
//! let compiled = CompiledTrace::compile(&source).expect("two segments compile");
//! assert_eq!(compiled.period_cycles(), 100);
//! assert_eq!(compiled.avf(), 0.25);
//! assert!(compiled.is_binary());
//! for c in 0..200 {
//!     assert_eq!(compiled.vulnerability_at(c), source.vulnerability_at(c));
//! }
//! ```

use crate::VulnerabilityTrace;
use serr_types::SerrError;

/// Longest within-bucket segment range resolved by linear scan before
/// switching to binary search.
const LINEAR_SCAN_MAX: usize = 16;

/// A flattened, bucket-indexed lowering of a [`VulnerabilityTrace`] with
/// `O(1)` expected point and cumulative queries. See the [module
/// docs](self) for the layout.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    /// Exclusive end cycle of each segment; strictly increasing, last =
    /// period.
    ends: Vec<u64>,
    /// Vulnerability of each segment.
    values: Vec<f64>,
    /// Cumulative vulnerability before each segment start.
    prefix: Vec<f64>,
    period: u64,
    /// Cumulative vulnerability over the whole period (= `avf × period`).
    total: f64,
    avf: f64,
    binary: bool,
    /// Bucket width is `1 << bucket_shift` cycles.
    bucket_shift: u32,
    /// `buckets[b]` = index of the segment containing cycle `b <<
    /// bucket_shift` (equivalently `ends.partition_point(|e| e <= start)`).
    buckets: Vec<u32>,
    /// Inverse (mass→segment) bucket table: `inv_buckets[b]` =
    /// `prefix.partition_point(|p| p <= b·w)` where `w = total /
    /// inv_buckets.len()` — the search window start for any mass coordinate
    /// inside bucket `b`. Empty when `total == 0` (nothing to invert).
    inv_buckets: Vec<u32>,
}

impl CompiledTrace {
    /// Hard cap on the flattened segment count. Kept at the threshold above
    /// which [`crate::ConcatTrace::breakpoints`] refuses to enumerate, so
    /// compilation never triggers that panic.
    pub const MAX_SEGMENTS: u64 = 4_000_000;

    /// Memory cap on the bucket table (entries are `u32`, so this is 8 MiB).
    /// Periods longer than this many cycles get proportionally wider
    /// buckets; queries inside a crowded bucket fall back to binary search.
    pub const MAX_BUCKETS: u64 = 1 << 21;

    /// Lowers `trace` into the compiled form, or returns `None` when the
    /// trace's [`span_count_hint`](VulnerabilityTrace::span_count_hint)
    /// exceeds [`CompiledTrace::MAX_SEGMENTS`] (callers should then keep the
    /// original representation; estimation falls back to the generic path).
    ///
    /// Compilation costs one `breakpoints()` enumeration plus one
    /// `vulnerability_at` per span, and is meant to be amortized over the
    /// millions of point queries of a Monte Carlo run.
    #[must_use]
    pub fn compile(trace: &(impl VulnerabilityTrace + ?Sized)) -> Option<CompiledTrace> {
        if trace.span_count_hint() > Self::MAX_SEGMENTS {
            return None;
        }
        let spans = trace.breakpoints();
        if spans.len() as u64 > Self::MAX_SEGMENTS {
            // The hint is advisory (the trait default is just the period); a
            // trace that under-reports its span count must still refuse here
            // rather than build an oversized table — and, transitively, rather
            // than ever reach the u32 bucket-index conversions below with an
            // index they cannot represent.
            return None;
        }
        let mut ends: Vec<u64> = Vec::with_capacity(spans.len());
        let mut values: Vec<f64> = Vec::with_capacity(spans.len());
        let mut prefix: Vec<f64> = Vec::with_capacity(spans.len());
        let mut start = 0u64;
        let mut cum = 0.0f64;
        for end in spans {
            if end <= start {
                // Defensive: tolerate unsorted/duplicate breakpoints.
                continue;
            }
            let v = trace.vulnerability_at(start);
            if values.last() == Some(&v) {
                *ends.last_mut().expect("values and ends stay in lockstep") = end;
            } else {
                prefix.push(cum);
                ends.push(end);
                values.push(v);
            }
            cum += (end - start) as f64 * v;
            start = end;
        }
        if ends.is_empty() {
            return None;
        }
        let period = start;
        let binary = values.iter().all(|&v| v == 0.0 || v == 1.0);
        // The segment cap above keeps the index conversions inside u32, so a
        // conversion failure is unreachable here; treat it as a refusal all
        // the same (callers fall back to the uncompiled representation).
        let (bucket_shift, buckets) = build_buckets(&ends, period).ok()?;
        let inv_buckets = build_inv_buckets(&prefix, cum).ok()?;
        Some(CompiledTrace {
            avf: cum / period as f64,
            total: cum,
            ends,
            values,
            prefix,
            period,
            binary,
            bucket_shift,
            buckets,
            inv_buckets,
        })
    }

    /// Number of (merged) segments in the flattened form.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.values.len()
    }

    /// Number of entries in the phase→segment bucket table.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket width in cycles (a power of two).
    #[must_use]
    pub fn bucket_cycles(&self) -> u64 {
        1u64 << self.bucket_shift
    }

    /// Number of entries in the inverse (mass→segment) bucket table
    /// (zero for never-vulnerable traces).
    #[must_use]
    pub fn inv_bucket_count(&self) -> usize {
        self.inv_buckets.len()
    }

    /// Cumulative vulnerability mass over one full period
    /// (`avf × period`, in cycle units). The inversion sampler's `Λ(L)/λ`.
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.total
    }

    /// Cumulative vulnerability `V(phase)` at a *fractional* phase within
    /// the period: the integral of `v(t)` over `[0, phase)`, linearly
    /// interpolated inside the containing segment. The fractional analog of
    /// [`VulnerabilityTrace::cumulative_within_period`], used by the
    /// inversion sampler to offset the first window by the trial's
    /// `initial_phase`.
    #[must_use]
    pub fn cumulative_at(&self, phase: f64) -> f64 {
        debug_assert!(
            phase.is_finite() && (0.0..=self.period as f64).contains(&phase),
            "phase {phase} outside [0, {}]",
            self.period
        );
        if phase >= self.period as f64 {
            return self.total;
        }
        let c = (phase as u64).min(self.period - 1);
        let i = self.segment_index(c);
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        self.prefix[i] + (phase - start as f64) * self.values[i]
    }

    /// Inverts the cumulative-vulnerability function: returns the fractional
    /// phase `ψ ∈ [0, period)` with `V(ψ) = m`, for `m ∈ [0, total_mass())`.
    ///
    /// This is the inversion sampler's segment search. The bucketed inverse
    /// index narrows the candidate range to a handful of prefix entries
    /// (`O(1)` amortized); a short boundary walk then pins the exact
    /// segment, absorbing the one-ulp disagreements between the build-time
    /// bucket boundaries `b·w` and the query-time division `m/w`. The
    /// landing segment always has `v > 0` on a self-consistent table: the
    /// last prefix entry `≤ m` cannot start a zero-mass run that reaches
    /// `total`, because then `m < total` would be unreachable mass.
    ///
    /// Out-of-range or non-finite `m` (possible only through corrupted
    /// tables feeding the caller) is clamped, never a panic: the guarded
    /// estimation path runs [`CompiledTrace::verify`] before trusting a
    /// compiled trace, and chaos campaigns rely on corruption surfacing
    /// there rather than as a crash here.
    #[must_use]
    pub fn phase_at_cumulative(&self, m: f64) -> f64 {
        debug_assert!(
            m.is_finite() && (0.0..self.total.max(f64::MIN_POSITIVE)).contains(&m),
            "mass {m} outside [0, {})",
            self.total
        );
        if self.inv_buckets.is_empty() || !has_positive_mass(self.total) {
            // Never-vulnerable (or corrupted-to-empty) trace: nothing to
            // invert; callers cannot reach here through the sampler because
            // AVF = 0 traces never fail.
            return 0.0;
        }
        let n = self.values.len();
        let m = m.clamp(0.0, self.total);
        let n_inv = self.inv_buckets.len();
        let w = self.total / n_inv as f64;
        let b = ((m / w) as usize).min(n_inv - 1);
        // ±1 slack around the bucket's window; the walk below makes
        // correctness independent of any rounding in `b`.
        let lo = (self.inv_buckets[b] as usize).saturating_sub(1).min(n - 1);
        let hi = self.inv_buckets.get(b + 1).map_or(n, |&j| (j as usize + 1).min(n));
        let j = if hi.saturating_sub(lo) <= LINEAR_SCAN_MAX {
            let mut j = lo;
            while j < hi && self.prefix[j] <= m {
                j += 1;
            }
            j
        } else {
            lo + self.prefix[lo..hi].partition_point(|&p| p <= m)
        };
        // Pin the true last index with prefix[i] <= m (walks are O(1): they
        // only move past entries inside the one-ulp boundary window or
        // across zero-mass segments sharing a prefix value).
        let mut i = j.saturating_sub(1).min(n - 1);
        while i > 0 && self.prefix[i] > m {
            i -= 1;
        }
        while i + 1 < n && self.prefix[i + 1] <= m {
            i += 1;
        }
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        let v = self.values[i];
        let off = if v > 0.0 { (m - self.prefix[i]).max(0.0) / v } else { 0.0 };
        let end = self.ends[i] as f64;
        let phase = start as f64 + off;
        if phase >= end {
            // Division rounded up to (or past) the segment boundary; step
            // back inside so the returned cycle is always vulnerable.
            end.next_down().max(start as f64)
        } else {
            phase
        }
    }

    /// Longest segment table resolved by the branchless select-chain in
    /// [`CompiledTrace::phase_at_cumulative_batch`]; longer tables fall
    /// back to the bucketed scalar probe per element.
    pub const BATCH_SCAN_SEGMENTS: usize = 32;

    /// Batched [`CompiledTrace::phase_at_cumulative`]: replaces every mass
    /// coordinate in `masses` with its inverse phase, in place.
    ///
    /// For tables up to [`CompiledTrace::BATCH_SCAN_SEGMENTS`] segments —
    /// the overwhelmingly common case after compile-time merging — the
    /// lookup is a branchless select-chain over stack-resident copies of
    /// the prefix table: each segment contributes one compare-and-blend,
    /// so the winning lane is the *last* index with `prefix ≤ m`, exactly
    /// the segment the scalar probe's pin-walk lands on (zero-run boundary
    /// handling included). The chain has a compile-time trip count (tables
    /// are padded to the next lane tier with `+∞` prefixes that never
    /// win), no data-dependent branches, and no gathers — every table
    /// entry is a loop-invariant scalar — which is what lets the compiler
    /// keep the prefix data in registers and vectorize across the batch.
    /// Larger tables delegate to [`CompiledTrace::phase_at_cumulative`]
    /// per element, which is still `O(1)` amortized through the inverse
    /// bucket index.
    ///
    /// The returned phases land in the same segment the scalar probe picks
    /// for every input; within the segment the offset is computed with a
    /// precomputed reciprocal (one ulp-level difference from the scalar
    /// division), which is why the batched sampler carries its own RNG
    /// schedule version instead of claiming bit-equality with the scalar
    /// sampler.
    pub fn phase_at_cumulative_batch(&self, masses: &mut [f64]) {
        if self.inv_buckets.is_empty() || !has_positive_mass(self.total) {
            masses.fill(0.0);
            return;
        }
        let n = self.values.len();
        match n {
            0..=2 => self.invert_select_chain::<2>(masses),
            3..=4 => self.invert_select_chain::<4>(masses),
            5..=8 => self.invert_select_chain::<8>(masses),
            9..=16 => self.invert_select_chain::<16>(masses),
            17..=Self::BATCH_SCAN_SEGMENTS => {
                self.invert_select_chain::<{ Self::BATCH_SCAN_SEGMENTS }>(masses);
            }
            _ => {
                for m in masses {
                    *m = self.phase_at_cumulative(*m);
                }
            }
        }
    }

    /// The tiered select-chain body of
    /// [`CompiledTrace::phase_at_cumulative_batch`]: `LANES` is the padded
    /// compile-time segment count (`≥ self.values.len()`).
    fn invert_select_chain<const LANES: usize>(&self, masses: &mut [f64]) {
        let n = self.values.len();
        debug_assert!((1..=LANES).contains(&n));
        let mut pre = [f64::INFINITY; LANES];
        let mut inv_v = [0.0f64; LANES];
        let mut start_f = [0.0f64; LANES];
        let mut end_down = [0.0f64; LANES];
        for j in 0..n {
            pre[j] = self.prefix[j];
            inv_v[j] = if self.values[j] > 0.0 { 1.0 / self.values[j] } else { 0.0 };
            start_f[j] = if j == 0 { 0.0 } else { self.ends[j - 1] as f64 };
            end_down[j] = (self.ends[j] as f64).next_down().max(start_f[j]);
        }
        let total = self.total;
        for m in masses {
            let mm = m.clamp(0.0, total);
            // Lane 0 always qualifies (prefix[0] = 0 ≤ mm); later lanes
            // overwrite while their prefix stays ≤ mm, so the survivor is
            // the last qualifying segment — the scalar pin-walk's answer.
            // `mm − pre[j]` is ≥ 0 whenever lane j is selected, and min()
            // against the predecessor of the segment end is the branchless
            // form of the scalar "step back inside the segment" clamp
            // (phase < end implies phase ≤ next_down(end)); a zero-mass
            // lane has inv_v = 0 and resolves to its start, as scalar.
            let mut phase = (mm * inv_v[0]).min(end_down[0]);
            for j in 1..LANES {
                let cand = (start_f[j] + (mm - pre[j]) * inv_v[j]).min(end_down[j]);
                phase = if pre[j] <= mm { cand } else { phase };
            }
            *m = phase;
        }
    }

    /// Batched [`CompiledTrace::cumulative_at`]: writes `V(phase)` for each
    /// fractional phase into `out`. The stationary-start batched sampler
    /// uses this to price each trial's initial phase before drawing.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn cumulative_at_batch(&self, phases: &[f64], out: &mut [f64]) {
        assert_eq!(phases.len(), out.len(), "phase and output slices out of lockstep");
        for (o, &p) in out.iter_mut().zip(phases) {
            *o = self.cumulative_at(p);
        }
    }

    /// Index of the segment containing `c` (already reduced mod period):
    /// one shift + one table read, then a bounded scan or an in-bucket
    /// binary search.
    #[inline]
    fn segment_index(&self, c: u64) -> usize {
        let b = (c >> self.bucket_shift) as usize;
        let lo = self.buckets[b] as usize;
        let hi = self.buckets.get(b + 1).map_or(self.ends.len(), |&i| i as usize);
        if hi - lo <= LINEAR_SCAN_MAX {
            let mut i = lo;
            // Safe: some segment in lo..=hi has `end > c` (the last end is
            // the period, and c < period).
            while self.ends[i] <= c {
                i += 1;
            }
            i
        } else {
            lo + self.ends[lo..hi].partition_point(|&e| e <= c)
        }
    }

    /// Index of the segment carrying the most vulnerability mass
    /// (`span length × value`) — the segment whose corruption moves the
    /// final estimate the most, which is what the fault injectors target.
    fn dominant_segment(&self) -> usize {
        let mut best = 0usize;
        let mut best_mass = -1.0f64;
        let mut start = 0u64;
        for (i, (&end, &v)) in self.ends.iter().zip(&self.values).enumerate() {
            let mass = (end - start) as f64 * v;
            if mass > best_mass {
                best_mass = mass;
                best = i;
            }
            start = end;
        }
        best
    }

    /// Fault injection: XORs `bit` into the IEEE-754 bit pattern of the
    /// dominant segment's value, modeling a memory bit flip in the compiled
    /// table. Derived fields are deliberately left stale — that is the
    /// inconsistency [`CompiledTrace::verify`] exists to catch.
    pub fn chaos_flip_dominant_value_bit(&mut self, bit: u32) {
        debug_assert!(bit < 64, "f64 has 64 bits, got bit index {bit}");
        let i = self.dominant_segment();
        self.values[i] = f64::from_bits(self.values[i].to_bits() ^ (1u64 << bit));
    }

    /// Fault injection: adds `delta_frac` of the total vulnerability mass to
    /// one prefix-sum entry (chosen by `selector`). The event-loop sampler
    /// never reads the prefix table, so to it this corruption is invisible;
    /// the inversion sampler reads prefix sums on *every* trial
    /// ([`CompiledTrace::phase_at_cumulative`]), so under
    /// `SamplerKind::Inversion` a perturbed entry skews the sampled failure
    /// phases directly. Either way the corruption must be caught *before*
    /// estimation by [`CompiledTrace::verify`]'s recomputation — which is
    /// exactly what the guarded path does.
    pub fn chaos_perturb_prefix(&mut self, selector: u64, delta_frac: f64) {
        debug_assert!(delta_frac != 0.0, "a zero perturbation injects nothing");
        let i = (selector % self.prefix.len() as u64) as usize;
        let scale = if self.total > 0.0 { self.total } else { 1.0 };
        self.prefix[i] += delta_frac * scale;
    }

    /// Fault injection: multiplies the dominant segment's value by `factor`
    /// and recomputes every derived field (prefix sums, total, AVF, binary
    /// flag) so the trace stays fully self-consistent. This models
    /// corruption *before* compilation: structural checks pass by
    /// construction and only a cross-engine consistency check can notice.
    pub fn chaos_scale_dominant_value(&mut self, factor: f64) {
        debug_assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "scale factor must stay within [0, 1] to keep values valid, got {factor}"
        );
        let i = self.dominant_segment();
        self.values[i] *= factor;
        let mut cum = 0.0f64;
        let mut start = 0u64;
        for (j, (&end, &v)) in self.ends.iter().zip(&self.values).enumerate() {
            self.prefix[j] = cum;
            cum += (end - start) as f64 * v;
            start = end;
        }
        self.total = cum;
        self.avf = cum / self.period as f64;
        self.binary = self.values.iter().all(|&v| v == 0.0 || v == 1.0);
        self.inv_buckets = build_inv_buckets(&self.prefix, self.total)
            .expect("segment count is unchanged from a previously valid compile");
    }

    /// Structural self-check: segment geometry, value ranges, and all
    /// derived fields (prefix sums, total, AVF, binary flag) must be
    /// mutually consistent.
    ///
    /// This is the poisoning detector the guarded estimation path runs
    /// before trusting a compiled trace: an undetected bit flip in the
    /// segment table silently rescales every estimate, which is exactly the
    /// "silently wrong" failure mode the paper warns about. The prefix
    /// tolerance scales with segment count because [`CompiledTrace::compile`]
    /// accumulates its sums over pre-merge source spans, which legitimately
    /// differs from a post-merge recomputation by a few ulps per span.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] naming the first inconsistency.
    pub fn verify(&self) -> Result<(), SerrError> {
        let n = self.values.len();
        if n == 0 || self.ends.len() != n || self.prefix.len() != n {
            return Err(SerrError::invalid_trace(format!(
                "compiled tables out of lockstep: {} ends, {n} values, {} prefixes",
                self.ends.len(),
                self.prefix.len()
            )));
        }
        if self.period == 0 || *self.ends.last().expect("checked non-empty") != self.period {
            return Err(SerrError::invalid_trace(format!(
                "last segment ends at {}, period is {}",
                self.ends.last().expect("checked non-empty"),
                self.period
            )));
        }
        let mut start = 0u64;
        for (i, &end) in self.ends.iter().enumerate() {
            if end <= start {
                return Err(SerrError::invalid_trace(format!(
                    "segment {i} ends at {end}, not after its start {start}"
                )));
            }
            start = end;
        }
        for (i, &v) in self.values.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SerrError::invalid_trace(format!(
                    "segment {i} vulnerability is {v}, outside [0, 1]"
                )));
            }
            if self.binary && v != 0.0 && v != 1.0 {
                return Err(SerrError::invalid_trace(format!(
                    "trace is flagged binary but segment {i} has vulnerability {v}"
                )));
            }
        }
        let scale = if self.total.is_finite() { self.total.abs().max(1.0) } else { 1.0 };
        let tol = scale * 1e-15 * (n as f64).max(1e3);
        let mut cum = 0.0f64;
        start = 0;
        for (i, (&end, &v)) in self.ends.iter().zip(&self.values).enumerate() {
            if (self.prefix[i] - cum).abs() > tol {
                return Err(SerrError::invalid_trace(format!(
                    "prefix sum {i} is {}, recomputation gives {cum}",
                    self.prefix[i]
                )));
            }
            cum += (end - start) as f64 * v;
            start = end;
        }
        if !self.total.is_finite() || (self.total - cum).abs() > tol {
            return Err(SerrError::invalid_trace(format!(
                "total vulnerability mass is {}, recomputation gives {cum}",
                self.total
            )));
        }
        let avf = self.total / self.period as f64;
        if !self.avf.is_finite() || (self.avf - avf).abs() > tol / self.period as f64 + 1e-12 {
            return Err(SerrError::invalid_trace(format!(
                "cached AVF is {}, total/period gives {avf}",
                self.avf
            )));
        }
        // The inversion sampler trusts the inverse index to bracket its
        // prefix search; a stale or truncated table silently widens (or
        // misdirects) every mass lookup, so rebuild-and-compare it like the
        // other derived fields.
        if self.inv_buckets != build_inv_buckets(&self.prefix, self.total)? {
            return Err(SerrError::invalid_trace(format!(
                "inverse bucket index ({} entries) disagrees with a rebuild from the prefix table",
                self.inv_buckets.len()
            )));
        }
        Ok(())
    }
}

/// NaN-robust positive-mass test: true exactly when `x` is a real number
/// greater than zero. The negated `!(x > 0.0)` idiom this replaces relied
/// on NaN comparing false; spelling the comparison through `partial_cmp`
/// keeps that truth table while making the incomparable case explicit.
fn has_positive_mass(x: f64) -> bool {
    x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
}

/// Checked `usize → u32` for bucket-table entries. Segment indexes are
/// stored as `u32` to halve the tables' footprint, so a trace with more
/// than `u32::MAX` segments cannot be indexed — refuse with a typed error
/// instead of silently truncating the index (which would misdirect every
/// lookup that lands in an affected bucket).
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] when `i` exceeds `u32::MAX`.
fn checked_bucket_index(i: usize) -> Result<u32, SerrError> {
    u32::try_from(i).map_err(|_| {
        SerrError::invalid_trace(format!(
            "segment index {i} exceeds the u32 bucket-table limit ({} segments max)",
            u32::MAX
        ))
    })
}

/// Picks the bucket width and fills the phase→segment table: the finest
/// power-of-two bucket such that the table stays within
/// [`CompiledTrace::MAX_BUCKETS`] and does not wildly exceed the segment
/// count (finer buckets past ~4 per segment buy nothing).
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] if a segment index does not fit the
/// `u32` table entries; unreachable for tables within
/// [`CompiledTrace::MAX_SEGMENTS`].
fn build_buckets(ends: &[u64], period: u64) -> Result<(u32, Vec<u32>), SerrError> {
    let seg_count = ends.len() as u64;
    let target = seg_count.saturating_mul(4).clamp(64, CompiledTrace::MAX_BUCKETS).min(period);
    let mut shift = 0u32;
    while ((period - 1) >> shift) + 1 > target {
        shift += 1;
    }
    let bucket_count = ((period - 1) >> shift) + 1;
    let mut buckets = Vec::with_capacity(bucket_count as usize);
    let mut seg = 0usize;
    for b in 0..bucket_count {
        let start = b << shift;
        while ends[seg] <= start {
            seg += 1;
        }
        buckets.push(checked_bucket_index(seg)?);
    }
    Ok((shift, buckets))
}

/// Fills the inverse (mass→segment) bucket table: `total` is divided into
/// equal-width mass buckets (~4 per segment, same sizing policy as the
/// phase index, minus the power-of-two constraint — mass coordinates are
/// `f64`, so the width need not be shiftable) and entry `b` records
/// `prefix.partition_point(|p| p <= b·w)`. A query for mass `m` starts its
/// prefix search at `inv_buckets[floor(m/w)] - 1`. Returns an empty table
/// when `total` is not positive: a never-vulnerable trace has no mass to
/// invert.
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] if a segment index does not fit the
/// `u32` table entries; unreachable for tables within
/// [`CompiledTrace::MAX_SEGMENTS`].
fn build_inv_buckets(prefix: &[f64], total: f64) -> Result<Vec<u32>, SerrError> {
    if !has_positive_mass(total) || prefix.is_empty() {
        return Ok(Vec::new());
    }
    let n_inv =
        (prefix.len() as u64).saturating_mul(4).clamp(64, CompiledTrace::MAX_BUCKETS) as usize;
    let w = total / n_inv as f64;
    let mut buckets = Vec::with_capacity(n_inv);
    // partition_point of a sorted table at an increasing boundary is
    // monotone, so one linear sweep fills every bucket in O(n_inv + n).
    let mut j = 0usize;
    for b in 0..n_inv {
        let boundary = b as f64 * w;
        while j < prefix.len() && prefix[j] <= boundary {
            j += 1;
        }
        buckets.push(checked_bucket_index(j)?);
    }
    Ok(buckets)
}

impl VulnerabilityTrace for CompiledTrace {
    fn period_cycles(&self) -> u64 {
        self.period
    }

    #[inline]
    fn vulnerability_at(&self, cycle: u64) -> f64 {
        let c = cycle % self.period;
        self.values[self.segment_index(c)]
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        assert!(r <= self.period, "cycle {r} beyond period {}", self.period);
        if r == self.period {
            return self.total;
        }
        let i = self.segment_index(r);
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        self.prefix[i] + (r - start) as f64 * self.values[i]
    }

    fn avf(&self) -> f64 {
        self.avf
    }

    fn is_never_vulnerable(&self) -> bool {
        self.total == 0.0
    }

    fn breakpoints(&self) -> Vec<u64> {
        self.ends.clone()
    }

    fn span_count_hint(&self) -> u64 {
        self.ends.len() as u64
    }

    fn is_binary(&self) -> bool {
        self.binary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompositeTrace, IntervalTrace, ShiftedTrace};
    use std::sync::Arc;

    /// Deterministic xorshift so tests need no external RNG.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_levels(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Lcg(seed | 1);
        (0..n).map(|_| (rng.next() % 5) as f64 / 4.0).collect()
    }

    #[test]
    fn agrees_with_source_interval_trace() {
        let levels = random_levels(7, 1_000);
        let src = IntervalTrace::from_levels(&levels).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        assert_eq!(c.period_cycles(), src.period_cycles());
        assert!((c.avf() - src.avf()).abs() < 1e-12);
        for cyc in 0..2_000u64 {
            assert_eq!(c.vulnerability_at(cyc), src.vulnerability_at(cyc), "cycle {cyc}");
        }
        for r in (0..=1_000u64).step_by(37) {
            let d = (c.cumulative_within_period(r) - src.cumulative_within_period(r)).abs();
            assert!(d < 1e-9, "r={r}: {d}");
        }
    }

    #[test]
    fn binary_flag_detection() {
        let bin = IntervalTrace::busy_idle(10, 20).unwrap();
        assert!(CompiledTrace::compile(&bin).unwrap().is_binary());
        let frac = IntervalTrace::from_levels(&[1.0, 0.5, 0.0]).unwrap();
        assert!(!CompiledTrace::compile(&frac).unwrap().is_binary());
        // The source traces conservatively report false either way.
        assert!(!bin.is_binary());
    }

    #[test]
    fn huge_period_uses_capped_bucket_table_with_fallback() {
        // Day-scale: 1.728e14 cycles, 2 segments. The bucket table must cap
        // out and queries must still be exact.
        let half = 43_200u64 * 2_000_000_000;
        let src = IntervalTrace::busy_idle(half, half).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        assert!(c.bucket_count() as u64 <= CompiledTrace::MAX_BUCKETS);
        assert!(c.bucket_cycles() > 1);
        assert_eq!(c.vulnerability_at(half - 1), 1.0);
        assert_eq!(c.vulnerability_at(half), 0.0);
        assert_eq!(c.vulnerability_at(2 * half - 1), 0.0);
        assert_eq!(c.cumulative_within_period(half), half as f64);
        assert_eq!(c.avf(), 0.5);
    }

    #[test]
    fn crowded_bucket_falls_back_to_binary_search() {
        // Many 1-cycle segments inside one wide bucket: force the in-bucket
        // binary search path by making the period huge and the segments
        // concentrated at the start.
        let mut segs = Vec::new();
        for i in 0..1_000u64 {
            segs.push(crate::Segment::new(1, f64::from(u32::from(i % 2 == 0))).unwrap());
        }
        segs.push(crate::Segment::new(1u64 << 40, 0.0).unwrap());
        let src = IntervalTrace::from_segments(segs).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        for cyc in 0..1_000u64 {
            assert_eq!(c.vulnerability_at(cyc), src.vulnerability_at(cyc), "cycle {cyc}");
        }
        assert_eq!(c.vulnerability_at(1_000_000), 0.0);
    }

    #[test]
    fn compiles_views_and_compositions() {
        let base: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::from_levels(&random_levels(3, 64)).unwrap());
        let shifted = ShiftedTrace::new(base.clone(), 17);
        let cs = CompiledTrace::compile(&shifted).unwrap();
        for cyc in 0..128u64 {
            assert_eq!(cs.vulnerability_at(cyc), shifted.vulnerability_at(cyc));
        }
        let other: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::from_levels(&random_levels(4, 64)).unwrap());
        let comp = CompositeTrace::new(vec![(1.0, base), (3.0, other)]).unwrap();
        let cc = CompiledTrace::compile(&comp).unwrap();
        for cyc in 0..128u64 {
            assert!((cc.vulnerability_at(cyc) - comp.vulnerability_at(cyc)).abs() < 1e-12);
        }
    }

    #[test]
    fn refuses_astronomical_span_counts() {
        // A tiled trace whose expansion would exceed the segment cap.
        let unit: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(3, 5).unwrap());
        let tiled = crate::ConcatTrace::new(vec![(unit, 10_000_000)]).unwrap();
        assert!(tiled.span_count_hint() > CompiledTrace::MAX_SEGMENTS);
        assert!(CompiledTrace::compile(&tiled).is_none());
    }

    #[test]
    fn bucket_index_conversion_is_checked_at_the_u32_boundary() {
        // The last representable index converts; one past it is a typed
        // refusal, not a silent wrap back to index 0.
        assert_eq!(checked_bucket_index(u32::MAX as usize), Ok(u32::MAX));
        let err = checked_bucket_index(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, SerrError::InvalidTrace { .. }), "wrong error kind: {err}");
        assert!(err.to_string().contains("bucket-table limit"), "unhelpful message: {err}");
    }

    /// A trace whose `span_count_hint` under-reports its real breakpoint
    /// count — the advisory-hint contract violation `compile` must survive.
    #[derive(Debug)]
    struct LyingHintTrace {
        period: u64,
    }

    impl VulnerabilityTrace for LyingHintTrace {
        fn period_cycles(&self) -> u64 {
            self.period
        }

        fn vulnerability_at(&self, cycle: u64) -> f64 {
            ((cycle % self.period) % 2) as f64
        }

        fn cumulative_within_period(&self, r: u64) -> f64 {
            (r / 2) as f64
        }

        fn breakpoints(&self) -> Vec<u64> {
            (1..=self.period).collect()
        }

        fn span_count_hint(&self) -> u64 {
            2
        }
    }

    #[test]
    fn compile_refuses_over_cap_breakpoints_despite_a_small_hint() {
        // Alternating 0/1 every cycle: nothing merges, so the real span
        // count is the period. One past the cap must refuse even though the
        // hint claims two spans; at the cap the hint path would have
        // admitted it anyway.
        let lying = LyingHintTrace { period: CompiledTrace::MAX_SEGMENTS + 1 };
        assert!(lying.span_count_hint() <= CompiledTrace::MAX_SEGMENTS);
        assert!(CompiledTrace::compile(&lying).is_none());
    }

    #[test]
    fn adjacent_equal_spans_merge() {
        // CompositeTrace breakpoints are the union of part breakpoints, so
        // consecutive spans can share a value; compilation merges them.
        let a: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::from_levels(&[1.0, 1.0, 0.0, 0.0]).unwrap());
        let b: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::from_levels(&[1.0, 0.0, 0.0, 1.0]).unwrap());
        let comp = CompositeTrace::new(vec![(1.0, a), (1.0, b)]).unwrap();
        let c = CompiledTrace::compile(&comp).unwrap();
        assert!(c.segment_count() <= 4);
        for cyc in 0..4u64 {
            assert!((c.vulnerability_at(cyc) - comp.vulnerability_at(cyc)).abs() < 1e-12);
        }
    }

    #[test]
    fn verify_accepts_freshly_compiled_traces() {
        for n in [3usize, 64, 1_000] {
            let src = IntervalTrace::from_levels(&random_levels(n as u64, n)).unwrap();
            let c = CompiledTrace::compile(&src).unwrap();
            c.verify().unwrap_or_else(|e| panic!("{n}-level trace failed verify: {e}"));
        }
        let day = IntervalTrace::busy_idle(1 << 30, 1 << 30).unwrap();
        CompiledTrace::compile(&day).unwrap().verify().unwrap();
    }

    #[test]
    fn verify_catches_value_bit_flips() {
        let src = IntervalTrace::from_levels(&[1.0, 1.0, 0.5, 0.0, 0.0, 0.0]).unwrap();
        for bit in [30u32, 40, 51, 55, 62] {
            let mut c = CompiledTrace::compile(&src).unwrap();
            c.chaos_flip_dominant_value_bit(bit);
            assert!(c.verify().is_err(), "bit {bit} flip went undetected");
        }
    }

    #[test]
    fn verify_catches_prefix_perturbations() {
        let src = IntervalTrace::from_levels(&[1.0, 0.5, 0.0, 0.25]).unwrap();
        for selector in 0..8u64 {
            let mut c = CompiledTrace::compile(&src).unwrap();
            c.chaos_perturb_prefix(selector, 0.05);
            assert!(c.verify().is_err(), "prefix perturbation {selector} went undetected");
            // Point queries (the event-loop sampler's only reads) still
            // agree with the source — the corruption only reaches estimates
            // through the inversion sampler's prefix lookups, which is why
            // this fault *must* be caught structurally before estimation.
            for cyc in 0..4 {
                assert_eq!(c.vulnerability_at(cyc), src.vulnerability_at(cyc));
            }
        }
    }

    #[test]
    fn inverse_lookup_round_trips_cumulative() {
        for (seed, n) in [(7u64, 5usize), (11, 64), (13, 1_000)] {
            let src = IntervalTrace::from_levels(&random_levels(seed, n)).unwrap();
            let c = CompiledTrace::compile(&src).unwrap();
            let total = c.total_mass();
            assert!(total > 0.0);
            for k in 0..997u64 {
                let m = total * (k as f64 / 997.0);
                let phase = c.phase_at_cumulative(m);
                assert!((0.0..(c.period_cycles() as f64)).contains(&phase), "m={m} phase={phase}");
                let back = c.cumulative_at(phase);
                assert!(
                    (back - m).abs() <= 1e-9 * total.max(1.0),
                    "seed {seed}: V(phase_at({m})) = {back}"
                );
                // The landing cycle must be vulnerable: zero-mass segments
                // are never selected.
                assert!(c.vulnerability_at(phase as u64) > 0.0, "m={m} landed on a dead cycle");
            }
        }
    }

    #[test]
    fn inverse_lookup_skips_zero_segments_at_boundaries() {
        // Masses exactly at segment boundaries sit between a vulnerable
        // segment and a zero run sharing the same prefix value; the lookup
        // must land at the *start of the next vulnerable* segment, never
        // inside the dead run.
        let src = IntervalTrace::from_levels(&[1.0, 0.0, 0.0, 0.5, 0.0, 1.0, 0.0]).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        assert_eq!(c.total_mass(), 2.5);
        // m = 1.0 is the boundary after the first segment: next mass lives
        // in the 0.5 segment starting at cycle 3.
        assert_eq!(c.phase_at_cumulative(1.0), 3.0);
        // m = 1.5 exhausts the 0.5 segment: next mass starts at cycle 5.
        assert_eq!(c.phase_at_cumulative(1.5), 5.0);
        assert_eq!(c.phase_at_cumulative(0.0), 0.0);
        assert!((c.phase_at_cumulative(1.25) - 3.5).abs() < 1e-12);
        assert!((c.phase_at_cumulative(2.0) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn cumulative_at_interpolates_fractional_phases() {
        let src = IntervalTrace::from_levels(&[1.0, 0.25, 0.0, 0.5]).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        for r in 0..=4u64 {
            assert_eq!(c.cumulative_at(r as f64), c.cumulative_within_period(r), "r={r}");
        }
        assert!((c.cumulative_at(0.5) - 0.5).abs() < 1e-15);
        assert!((c.cumulative_at(1.5) - 1.125).abs() < 1e-15);
        assert!((c.cumulative_at(2.5) - 1.25).abs() < 1e-15);
        assert!((c.cumulative_at(3.5) - 1.5).abs() < 1e-15);
    }

    #[test]
    fn inverse_lookup_handles_huge_periods() {
        // Day-scale period with a capped bucket table: mass coordinates are
        // ~1e14, so the inverse lookup must stay exact where f64 can be and
        // always land in the vulnerable first half.
        let half = 43_200u64 * 2_000_000_000;
        let src = IntervalTrace::busy_idle(half, half).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        for frac in [0.0, 0.25, 0.5, 0.9999] {
            let m = c.total_mass() * frac;
            let phase = c.phase_at_cumulative(m);
            assert!(phase <= half as f64, "frac {frac} escaped the vulnerable half: {phase}");
            assert!((c.cumulative_at(phase) - m).abs() <= 1e-9 * c.total_mass());
        }
    }

    #[test]
    fn never_vulnerable_trace_has_degenerate_inverse_index() {
        let src = IntervalTrace::from_levels(&[0.0, 0.0]).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        assert!(c.is_never_vulnerable());
        assert_eq!(c.inv_bucket_count(), 0);
        c.verify().unwrap();
    }

    #[test]
    fn consistent_scaling_rebuilds_inverse_index() {
        let src = IntervalTrace::from_levels(&random_levels(21, 128)).unwrap();
        let mut c = CompiledTrace::compile(&src).unwrap();
        c.chaos_scale_dominant_value(0.25);
        // Self-consistent corruption keeps every derived table valid —
        // including the inverse index the inversion sampler reads.
        c.verify().unwrap();
        let total = c.total_mass();
        for k in [0u64, 31, 63, 96] {
            let m = total * (k as f64 / 97.0);
            let back = c.cumulative_at(c.phase_at_cumulative(m));
            assert!((back - m).abs() <= 1e-9 * total.max(1.0));
        }
    }

    #[test]
    fn verify_catches_stale_inverse_index() {
        let src = IntervalTrace::from_levels(&random_levels(5, 32)).unwrap();
        let mut c = CompiledTrace::compile(&src).unwrap();
        c.verify().unwrap();
        let last = c.inv_buckets.len() - 1;
        c.inv_buckets[last] = 0;
        assert!(c.verify().is_err(), "zeroed inverse-bucket entry went undetected");
    }

    #[test]
    fn consistent_scaling_passes_verify_but_changes_avf() {
        let src = IntervalTrace::from_levels(&[1.0, 1.0, 1.0, 0.5, 0.0, 0.0]).unwrap();
        let clean = CompiledTrace::compile(&src).unwrap();
        let mut c = clean.clone();
        c.chaos_scale_dominant_value(0.25);
        // Self-consistent corruption is invisible to structural checks...
        c.verify().unwrap();
        // ...but the estimate-relevant quantities all moved.
        assert!(c.avf() < clean.avf());
        assert!(
            (c.cumulative_within_period(c.period_cycles()) - c.avf() * c.period_cycles() as f64)
                .abs()
                < 1e-9
        );
        assert!(!c.is_binary() || c.avf() == 0.0);
    }

    #[test]
    fn batch_inverse_agrees_with_scalar_probe() {
        // Small tables take the branchless count-scan; large ones fall back
        // to the scalar probe. Either way each mass must land in the same
        // segment as the scalar lookup, with the in-segment offset equal up
        // to the reciprocal-vs-division rounding.
        for (seed, n) in [(3u64, 4usize), (7, 20), (5, 32), (13, 1_000)] {
            let src = IntervalTrace::from_levels(&random_levels(seed, n)).unwrap();
            let c = CompiledTrace::compile(&src).unwrap();
            let total = c.total_mass();
            let mut masses: Vec<f64> = (0..997).map(|k| total * (f64::from(k) / 997.0)).collect();
            let scalar: Vec<f64> = masses.iter().map(|&m| c.phase_at_cumulative(m)).collect();
            c.phase_at_cumulative_batch(&mut masses);
            for (i, (&b, &s)) in masses.iter().zip(&scalar).enumerate() {
                assert!(
                    (b - s).abs() <= 1e-12 * c.period_cycles() as f64,
                    "seed {seed} n {n} mass #{i}: batch {b} vs scalar {s}"
                );
                assert_eq!(b as u64, s as u64, "landed in different cycles");
                assert!(c.vulnerability_at(b as u64) > 0.0, "batch landed on a dead cycle");
            }
        }
    }

    #[test]
    fn batch_inverse_pins_zero_run_boundaries_like_the_scalar_probe() {
        // Same fixture as inverse_lookup_skips_zero_segments_at_boundaries:
        // boundary masses share a prefix value with a dead run and must
        // resolve to the next vulnerable segment's start, exactly.
        let src = IntervalTrace::from_levels(&[1.0, 0.0, 0.0, 0.5, 0.0, 1.0, 0.0]).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        let mut masses = [1.0, 1.5, 0.0, 1.25, 2.0];
        c.phase_at_cumulative_batch(&mut masses);
        assert_eq!(masses[0], 3.0);
        assert_eq!(masses[1], 5.0);
        assert_eq!(masses[2], 0.0);
        assert!((masses[3] - 3.5).abs() < 1e-12);
        assert!((masses[4] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn batch_inverse_clamps_the_extremes_inside_the_period() {
        let src = IntervalTrace::busy_idle(25, 75).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        // At m → total⁻ the phase must stay strictly inside the vulnerable
        // segment; slight underflow clamps to phase 0 instead of NaN-ing.
        let mut masses = [c.total_mass().next_down(), -1e-12, 0.0];
        c.phase_at_cumulative_batch(&mut masses);
        assert!(masses[0] < 25.0, "m→total⁻ escaped the busy half: {}", masses[0]);
        assert_eq!(masses[1], 0.0);
        assert_eq!(masses[2], 0.0);
        for p in masses {
            assert!(c.vulnerability_at(p as u64) > 0.0);
        }

        let dead = CompiledTrace::compile(&IntervalTrace::from_levels(&[0.0, 0.0]).unwrap());
        let mut masses = [0.5, 0.0];
        dead.unwrap().phase_at_cumulative_batch(&mut masses);
        assert_eq!(masses, [0.0, 0.0]);
    }

    #[test]
    fn batch_cumulative_matches_pointwise_queries() {
        let src = IntervalTrace::from_levels(&random_levels(17, 64)).unwrap();
        let c = CompiledTrace::compile(&src).unwrap();
        let phases: Vec<f64> = (0..=256).map(|k| f64::from(k) / 4.0).collect();
        let mut out = vec![0.0; phases.len()];
        c.cumulative_at_batch(&phases, &mut out);
        for (&p, &got) in phases.iter().zip(&out) {
            assert_eq!(got, c.cumulative_at(p), "phase {p}");
        }
    }

    #[test]
    fn compiled_roundtrip_is_stable() {
        let src = IntervalTrace::from_levels(&random_levels(9, 200)).unwrap();
        let once = CompiledTrace::compile(&src).unwrap();
        let twice = CompiledTrace::compile(&once).unwrap();
        assert_eq!(once.segment_count(), twice.segment_count());
        for cyc in 0..200u64 {
            assert_eq!(once.vulnerability_at(cyc), twice.vulnerability_at(cyc));
        }
    }
}
