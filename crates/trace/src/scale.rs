//! Uniformly derated view of a trace.

use std::sync::Arc;

use crate::VulnerabilityTrace;

/// A trace with every cycle's vulnerability multiplied by a constant factor
/// in `[0, 1]`: `v'(c) = p · v(c)`.
///
/// The paper's unit masking model is deliberately conservative: "if the
/// unit is busy processing an instruction, then for simplicity, we
/// conservatively assume that the error is not masked and will lead to
/// failure" (Section 4.1), even though logic masking, dataflow dead-ends,
/// and value-level tolerance mask a further fraction. `ScaledTrace` models
/// that residual masking as a uniform survival probability, enabling
/// sensitivity studies of the conservatism (see the `masking_conservatism`
/// ablation).
///
/// ```
/// use std::sync::Arc;
/// use serr_trace::{IntervalTrace, ScaledTrace, VulnerabilityTrace};
///
/// let busy = Arc::new(IntervalTrace::busy_idle(3, 1).unwrap()); // AVF 0.75
/// let with_logic_masking = ScaledTrace::new(busy, 0.4).unwrap();
/// assert!((with_logic_masking.avf() - 0.3).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub struct ScaledTrace {
    inner: Arc<dyn VulnerabilityTrace>,
    factor: f64,
}

impl ScaledTrace {
    /// Wraps `inner`, multiplying vulnerabilities by `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`serr_types::SerrError::InvalidTrace`] if `factor` is
    /// outside `[0, 1]`.
    pub fn new(
        inner: Arc<dyn VulnerabilityTrace>,
        factor: f64,
    ) -> Result<Self, serr_types::SerrError> {
        if !(0.0..=1.0).contains(&factor) {
            return Err(serr_types::SerrError::invalid_trace(format!(
                "scale factor {factor} outside [0,1]"
            )));
        }
        Ok(ScaledTrace { inner, factor })
    }

    /// The derating factor.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl std::fmt::Debug for ScaledTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaledTrace")
            .field("factor", &self.factor)
            .field("period", &self.inner.period_cycles())
            .finish()
    }
}

impl VulnerabilityTrace for ScaledTrace {
    fn period_cycles(&self) -> u64 {
        self.inner.period_cycles()
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        self.factor * self.inner.vulnerability_at(cycle)
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        self.factor * self.inner.cumulative_within_period(r)
    }

    fn breakpoints(&self) -> Vec<u64> {
        self.inner.breakpoints()
    }

    fn span_count_hint(&self) -> u64 {
        self.inner.span_count_hint()
    }

    fn survival_weight(&self, lambda_cycle: f64) -> (f64, f64) {
        // λ·(p·v) ≡ (λp)·v: delegate with a scaled rate; U(L) rescales back.
        if self.factor == 0.0 {
            return (self.period_cycles() as f64, 0.0);
        }
        let (integral, u_total) = self.inner.survival_weight(lambda_cycle * self.factor);
        (integral, u_total * self.factor)
    }

    fn tiling(&self) -> Option<Vec<(Arc<dyn VulnerabilityTrace>, u64)>> {
        self.inner.tiling().map(|parts| {
            parts
                .into_iter()
                .map(|(t, k)| {
                    let scaled: Arc<dyn VulnerabilityTrace> =
                        Arc::new(ScaledTrace { inner: t, factor: self.factor });
                    (scaled, k)
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalTrace;

    fn base() -> Arc<dyn VulnerabilityTrace> {
        Arc::new(IntervalTrace::from_levels(&[1.0, 0.5, 0.0, 0.25]).unwrap())
    }

    #[test]
    fn factor_one_is_identity() {
        let b = base();
        let s = ScaledTrace::new(b.clone(), 1.0).unwrap();
        for c in 0..4 {
            assert_eq!(s.vulnerability_at(c), b.vulnerability_at(c));
        }
        assert_eq!(s.avf(), b.avf());
    }

    #[test]
    fn scales_pointwise_and_cumulative() {
        let s = ScaledTrace::new(base(), 0.5).unwrap();
        assert_eq!(s.vulnerability_at(0), 0.5);
        assert_eq!(s.vulnerability_at(1), 0.25);
        assert_eq!(s.vulnerability_at(2), 0.0);
        assert!((s.cumulative_within_period(4) - 0.875).abs() < 1e-12);
        assert_eq!(s.factor(), 0.5);
    }

    #[test]
    fn factor_zero_never_fails() {
        let s = ScaledTrace::new(base(), 0.0).unwrap();
        assert!(s.is_never_vulnerable());
        let (integral, u) = s.survival_weight(0.1);
        assert_eq!(u, 0.0);
        assert_eq!(integral, 4.0);
    }

    #[test]
    fn survival_weight_matches_explicit_scaling() {
        let levels = [1.0, 0.5, 0.0, 0.25, 0.75, 0.0];
        let scaled_levels: Vec<f64> = levels.iter().map(|v| v * 0.3).collect();
        let explicit = IntervalTrace::from_levels(&scaled_levels).unwrap();
        let adapter =
            ScaledTrace::new(Arc::new(IntervalTrace::from_levels(&levels).unwrap()), 0.3).unwrap();
        for &lambda in &[1e-6, 0.01, 0.5] {
            let (ia, ua) = adapter.survival_weight(lambda);
            let (ie, ue) = explicit.survival_weight(lambda);
            assert!((ia - ie).abs() < 1e-12, "λ={lambda}");
            assert!((ua - ue).abs() < 1e-12, "λ={lambda}");
        }
    }

    #[test]
    fn rejects_out_of_range_factor() {
        assert!(ScaledTrace::new(base(), 1.5).is_err());
        assert!(ScaledTrace::new(base(), -0.1).is_err());
    }

    #[test]
    fn tiling_propagates_scaling() {
        let part: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(2, 2).unwrap());
        let concat = Arc::new(crate::ConcatTrace::new(vec![(part, 3)]).unwrap());
        let scaled = ScaledTrace::new(concat, 0.5).unwrap();
        let tiling = scaled.tiling().expect("concat tiling visible through scale");
        assert_eq!(tiling.len(), 1);
        assert_eq!(tiling[0].1, 3);
        assert_eq!(tiling[0].0.vulnerability_at(0), 0.5);
    }
}
