//! Concatenation of tiled traces: the paper's `combined` workload.
//!
//! The `combined` synthesized workload "concatenates two SPEC benchmarks in
//! a loop with iteration size of 24 hours. The first half of the iteration
//! runs one benchmark and the second half runs the other" (Section 4.2). A
//! benchmark masking trace spans ~10⁶ cycles while 12 hours spans ~10¹⁴, so
//! each half tiles its benchmark trace tens of millions of times — far too
//! many spans to enumerate. [`ConcatTrace`] represents this exactly and
//! overrides [`VulnerabilityTrace::survival_weight`] with a geometric-series
//! closed form, keeping the renewal MTTF exact.

use std::sync::Arc;

use serr_types::SerrError;

use crate::VulnerabilityTrace;

/// Stable `1 − e^{−x}`.
fn omen(x: f64) -> f64 {
    -(-x).exp_m1()
}

struct Part {
    trace: Arc<dyn VulnerabilityTrace>,
    tiles: u64,
    /// First cycle of this part within the concatenated period.
    start: u64,
    /// Cumulative vulnerability before this part starts.
    u_before: f64,
}

/// A periodic trace formed by running each inner trace for a whole number of
/// its periods ("tiles"), one part after another.
///
/// ```
/// use std::sync::Arc;
/// use serr_trace::{ConcatTrace, IntervalTrace, VulnerabilityTrace};
///
/// let a = Arc::new(IntervalTrace::busy_idle(2, 2).unwrap()); // AVF 0.5
/// let b = Arc::new(IntervalTrace::busy_idle(1, 3).unwrap()); // AVF 0.25
/// // Run a twice (8 cycles) then b twice (8 cycles): overall AVF = 0.375.
/// let c = ConcatTrace::new(vec![(a, 2), (b, 2)]).unwrap();
/// assert_eq!(c.period_cycles(), 16);
/// assert!((c.avf() - 0.375).abs() < 1e-12);
/// ```
pub struct ConcatTrace {
    parts: Vec<Part>,
    period: u64,
    u_total: f64,
}

impl std::fmt::Debug for ConcatTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcatTrace")
            .field("parts", &self.parts.len())
            .field("period", &self.period)
            .field("avf", &self.avf())
            .finish()
    }
}

impl ConcatTrace {
    /// Builds a concatenation from `(trace, tiles)` parts, in order.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `parts` is empty, any tile
    /// count is zero, or the total period overflows `u64`.
    pub fn new(parts: Vec<(Arc<dyn VulnerabilityTrace>, u64)>) -> Result<Self, SerrError> {
        if parts.is_empty() {
            return Err(SerrError::invalid_trace("concatenation requires at least one part"));
        }
        let mut built = Vec::with_capacity(parts.len());
        let mut start = 0u64;
        let mut u_before = 0.0f64;
        for (trace, tiles) in parts {
            if tiles == 0 {
                return Err(SerrError::invalid_trace("tile count must be positive"));
            }
            let inner_period = trace.period_cycles();
            let span = inner_period
                .checked_mul(tiles)
                .and_then(|s| s.checked_add(start).map(|_| s))
                .ok_or_else(|| SerrError::invalid_trace("concatenated period overflows u64"))?;
            let u_part = trace.cumulative_within_period(inner_period);
            built.push(Part { trace, tiles, start, u_before });
            start = start
                .checked_add(span)
                .ok_or_else(|| SerrError::invalid_trace("concatenated period overflows u64"))?;
            u_before += tiles as f64 * u_part;
        }
        Ok(ConcatTrace { parts: built, period: start, u_total: u_before })
    }

    /// Convenience for the paper's `combined` workload: part `a` tiled to
    /// fill `span_a` cycles, then part `b` to fill `span_b` cycles. Spans
    /// are rounded down to whole tiles (they must fit at least one).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if either span is shorter than
    /// one period of its trace.
    pub fn two_phase(
        a: Arc<dyn VulnerabilityTrace>,
        span_a: u64,
        b: Arc<dyn VulnerabilityTrace>,
        span_b: u64,
    ) -> Result<Self, SerrError> {
        let tiles_a = span_a / a.period_cycles();
        let tiles_b = span_b / b.period_cycles();
        if tiles_a == 0 || tiles_b == 0 {
            return Err(SerrError::invalid_trace(
                "each phase must fit at least one whole iteration of its workload",
            ));
        }
        ConcatTrace::new(vec![(a, tiles_a), (b, tiles_b)])
    }

    /// Number of parts.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    fn locate(&self, cycle_in_period: u64) -> (&Part, u64) {
        let idx = self.parts.partition_point(|p| p.start <= cycle_in_period).saturating_sub(1);
        let part = &self.parts[idx];
        (part, cycle_in_period - part.start)
    }
}

impl VulnerabilityTrace for ConcatTrace {
    fn period_cycles(&self) -> u64 {
        self.period
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        let (part, offset) = self.locate(cycle % self.period);
        part.trace.vulnerability_at(offset % part.trace.period_cycles())
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        assert!(r <= self.period, "cycle {r} beyond period {}", self.period);
        if r == self.period {
            return self.u_total;
        }
        let (part, offset) = self.locate(r);
        part.u_before + part.trace.cumulative_vulnerability(offset)
    }

    /// # Panics
    ///
    /// Panics if the expanded breakpoint list would exceed 4,000,000 entries
    /// (e.g. a day-scale `combined` workload); the analytic path never needs
    /// it because [`ConcatTrace`] overrides `survival_weight`.
    fn breakpoints(&self) -> Vec<u64> {
        let total: u64 =
            self.parts.iter().map(|p| p.tiles * p.trace.breakpoints().len() as u64).sum();
        assert!(
            total <= 4_000_000,
            "expanding {total} breakpoints is infeasible; use survival_weight instead"
        );
        let mut out = Vec::with_capacity(total as usize);
        for part in &self.parts {
            let inner = part.trace.breakpoints();
            let inner_period = part.trace.period_cycles();
            for tile in 0..part.tiles {
                let base = part.start + tile * inner_period;
                out.extend(inner.iter().map(|&b| base + b));
            }
        }
        out
    }

    fn tiling(&self) -> Option<Vec<(Arc<dyn VulnerabilityTrace>, u64)>> {
        Some(self.parts.iter().map(|p| (p.trace.clone(), p.tiles)).collect())
    }

    fn span_count_hint(&self) -> u64 {
        // Every tile repeats the inner span structure.
        self.parts
            .iter()
            .map(|p| p.tiles.saturating_mul(p.trace.span_count_hint()))
            .fold(0u64, u64::saturating_add)
    }

    fn survival_weight(&self, lambda_cycle: f64) -> (f64, f64) {
        assert!(lambda_cycle > 0.0, "per-cycle rate must be positive");
        let mut integral = 0.0f64;
        for part in &self.parts {
            let (i_tile, u_tile) = part.trace.survival_weight(lambda_cycle);
            let head = (-lambda_cycle * part.u_before).exp();
            // Σ_{j=0}^{k−1} e^{−jλU} · I = I · (1 − e^{−kλU})/(1 − e^{−λU}),
            // degenerating to k·I when the part is never vulnerable.
            let tiled = if u_tile > 0.0 {
                let x = lambda_cycle * u_tile;
                if x > 700.0 {
                    // Later tiles contribute nothing.
                    i_tile
                } else {
                    i_tile * omen(part.tiles as f64 * x) / omen(x)
                }
            } else {
                i_tile * part.tiles as f64
            };
            integral += head * tiled;
        }
        (integral, self.u_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalTrace;

    fn arc(t: IntervalTrace) -> Arc<dyn VulnerabilityTrace> {
        Arc::new(t)
    }

    /// Reference: materialize the concatenation as a flat IntervalTrace.
    fn flatten(c: &ConcatTrace) -> IntervalTrace {
        let levels: Vec<f64> = (0..c.period_cycles()).map(|cy| c.vulnerability_at(cy)).collect();
        IntervalTrace::from_levels(&levels).unwrap()
    }

    #[test]
    fn pointwise_matches_flat_reference() {
        let c = ConcatTrace::new(vec![
            (arc(IntervalTrace::busy_idle(3, 2).unwrap()), 3),
            (arc(IntervalTrace::from_levels(&[0.5, 0.0, 1.0]).unwrap()), 2),
        ])
        .unwrap();
        assert_eq!(c.period_cycles(), 3 * 5 + 2 * 3);
        let flat = flatten(&c);
        for cy in 0..c.period_cycles() * 2 {
            assert_eq!(c.vulnerability_at(cy), flat.vulnerability_at(cy), "cycle {cy}");
        }
        for r in 0..=c.period_cycles() {
            assert!(
                (c.cumulative_within_period(r) - flat.cumulative_within_period(r)).abs() < 1e-9,
                "r={r}"
            );
        }
        assert!((c.avf() - flat.avf()).abs() < 1e-12);
    }

    #[test]
    fn survival_weight_matches_default_computation() {
        let c = ConcatTrace::new(vec![
            (arc(IntervalTrace::busy_idle(4, 6).unwrap()), 5),
            (arc(IntervalTrace::busy_idle(2, 2).unwrap()), 7),
        ])
        .unwrap();
        let flat = flatten(&c);
        for &lambda in &[1e-9, 1e-3, 0.05, 0.5] {
            let (ic, uc) = c.survival_weight(lambda);
            let (ifl, ufl) = flat.survival_weight(lambda);
            assert!((uc - ufl).abs() < 1e-9, "λ={lambda}");
            assert!(((ic - ifl) / ifl).abs() < 1e-10, "λ={lambda}: {ic} vs {ifl}");
        }
    }

    #[test]
    fn breakpoints_match_flat_semantics_when_small() {
        let c = ConcatTrace::new(vec![
            (arc(IntervalTrace::busy_idle(2, 1).unwrap()), 2),
            (arc(IntervalTrace::busy_idle(1, 1).unwrap()), 3),
        ])
        .unwrap();
        let bps = c.breakpoints();
        assert_eq!(*bps.last().unwrap(), c.period_cycles());
        let mut start = 0u64;
        for &end in &bps {
            let v = c.vulnerability_at(start);
            for cy in start..end {
                assert_eq!(c.vulnerability_at(cy), v);
            }
            start = end;
        }
    }

    #[test]
    fn day_scale_combined_survival_is_finite_and_sane() {
        // Two ~1e6-cycle benchmark-like traces tiled to 12 simulated hours
        // each at 2 GHz: ~4.3e7 tiles per half. survival_weight must work
        // without expanding breakpoints.
        let half_day_cycles = 43_200u64 * 2_000_000_000;
        let bench_a = arc(IntervalTrace::busy_idle(700_000, 300_000).unwrap()); // AVF 0.7
        let bench_b = arc(IntervalTrace::busy_idle(200_000, 800_000).unwrap()); // AVF 0.2
        let c = ConcatTrace::two_phase(bench_a, half_day_cycles, bench_b, half_day_cycles).unwrap();
        assert!((c.avf() - 0.45).abs() < 1e-9);
        // λL small: MTTF ≈ 1/(λ·AVF).
        let lambda = 1e-20;
        let (i, u) = c.survival_weight(lambda);
        let mttf = i / omen(lambda * u);
        let expect = 1.0 / (lambda * 0.45);
        assert!(((mttf - expect) / expect).abs() < 1e-6);
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(ConcatTrace::new(vec![]).is_err());
        assert!(ConcatTrace::new(vec![(arc(IntervalTrace::busy_idle(1, 1).unwrap()), 0)]).is_err());
        // two_phase spans shorter than one iteration.
        assert!(ConcatTrace::two_phase(
            arc(IntervalTrace::busy_idle(5, 5).unwrap()),
            3,
            arc(IntervalTrace::busy_idle(1, 1).unwrap()),
            10,
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn huge_breakpoint_expansion_panics() {
        let c = ConcatTrace::new(vec![(arc(IntervalTrace::busy_idle(1, 1).unwrap()), 10_000_000)])
            .unwrap();
        let _ = c.breakpoints();
    }
}
