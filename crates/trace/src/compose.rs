//! Rate-weighted composition of unit traces into a processor-level trace.

use std::sync::Arc;

use serr_types::SerrError;

use crate::VulnerabilityTrace;

/// Combines several unit traces into one processor-level vulnerability
/// trace, weighting each unit by its share of the processor's raw error
/// rate.
///
/// The paper's cluster experiments treat a whole processor as one component
/// and "apply the three [unit] traces to the corresponding units
/// simultaneously to determine whether there is a processor-level failure"
/// (Section 4.2). Probabilistically: a raw error striking the processor
/// lands on unit *i* with probability `wᵢ/Σw` (where `wᵢ` is the unit's raw
/// error rate) and is masked according to that unit's trace, so the
/// processor-level vulnerability at cycle `c` is `Σᵢ wᵢ·vᵢ(c) / Σᵢ wᵢ`.
///
/// ```
/// use std::sync::Arc;
/// use serr_trace::{CompositeTrace, IntervalTrace, VulnerabilityTrace};
///
/// let int_unit = Arc::new(IntervalTrace::busy_idle(6, 2).unwrap());
/// let fp_unit = Arc::new(IntervalTrace::busy_idle(2, 6).unwrap());
/// // FP unit has 2x the raw rate of the integer unit.
/// let cpu = CompositeTrace::new(vec![(1.0, int_unit), (2.0, fp_unit)]).unwrap();
/// assert_eq!(cpu.period_cycles(), 8);
/// // First 2 cycles: both busy -> fully vulnerable.
/// assert_eq!(cpu.vulnerability_at(0), 1.0);
/// // Cycles 2..6: only the int unit (weight 1 of 3) is busy.
/// assert!((cpu.vulnerability_at(3) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub struct CompositeTrace {
    parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)>,
    total_weight: f64,
    period: u64,
}

impl std::fmt::Debug for CompositeTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeTrace")
            .field("part_count", &self.parts.len())
            .field("weights", &self.parts.iter().map(|(w, _)| *w).collect::<Vec<_>>())
            .field("total_weight", &self.total_weight)
            .field("period", &self.period)
            .finish()
    }
}

impl CompositeTrace {
    /// Builds a composite from `(weight, trace)` pairs. Weights are
    /// typically the units' raw error rates; only their ratios matter.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `parts` is empty, any weight is
    /// non-positive or non-finite, the weights sum to zero, or the traces do
    /// not all share one period.
    pub fn new(parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)>) -> Result<Self, SerrError> {
        if parts.is_empty() {
            return Err(SerrError::invalid_trace("composite requires at least one part"));
        }
        let period = parts[0].1.period_cycles();
        let mut total_weight = 0.0;
        for (w, t) in &parts {
            if !(*w > 0.0 && w.is_finite()) {
                return Err(SerrError::invalid_trace(format!(
                    "composite weight must be positive and finite, got {w}"
                )));
            }
            if t.period_cycles() != period {
                return Err(SerrError::invalid_trace(format!(
                    "composite parts must share one period: {} vs {period}",
                    t.period_cycles()
                )));
            }
            total_weight += w;
        }
        Ok(CompositeTrace { parts, total_weight, period })
    }

    /// Number of unit traces combined.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// The sum of the weights (e.g. the processor's total raw error rate in
    /// whatever unit the caller used).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

impl VulnerabilityTrace for CompositeTrace {
    fn period_cycles(&self) -> u64 {
        self.period
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        let s: f64 = self.parts.iter().map(|(w, t)| w * t.vulnerability_at(cycle)).sum();
        s / self.total_weight
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        let s: f64 = self.parts.iter().map(|(w, t)| w * t.cumulative_within_period(r)).sum();
        s / self.total_weight
    }

    fn breakpoints(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self.parts.iter().flat_map(|(_, t)| t.breakpoints()).collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    fn span_count_hint(&self) -> u64 {
        // The merged breakpoint set is at most the sum of the parts'.
        self.parts.iter().map(|(_, t)| t.span_count_hint()).fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalTrace;

    fn arc(t: IntervalTrace) -> Arc<dyn VulnerabilityTrace> {
        Arc::new(t)
    }

    #[test]
    fn single_part_is_identity() {
        let t = IntervalTrace::busy_idle(3, 5).unwrap();
        let c = CompositeTrace::new(vec![(7.0, arc(t.clone()))]).unwrap();
        for cyc in 0..8 {
            assert_eq!(c.vulnerability_at(cyc), t.vulnerability_at(cyc));
        }
        assert_eq!(c.avf(), t.avf());
        assert_eq!(c.part_count(), 1);
        assert_eq!(c.total_weight(), 7.0);
    }

    #[test]
    fn avf_is_weighted_average_of_unit_avfs() {
        // Key identity used by the AVF step on composed processors.
        let a = IntervalTrace::busy_idle(4, 4).unwrap(); // AVF 0.5
        let b = IntervalTrace::busy_idle(2, 6).unwrap(); // AVF 0.25
        let c = CompositeTrace::new(vec![(3.0, arc(a)), (1.0, arc(b))]).unwrap();
        let expected = (3.0 * 0.5 + 1.0 * 0.25) / 4.0;
        assert!((c.avf() - expected).abs() < 1e-12);
    }

    #[test]
    fn pointwise_weighted_average() {
        let a = IntervalTrace::from_levels(&[1.0, 0.0, 0.5, 0.25]).unwrap();
        let b = IntervalTrace::from_levels(&[0.0, 1.0, 0.5, 0.75]).unwrap();
        let c = CompositeTrace::new(vec![(1.0, arc(a.clone())), (3.0, arc(b.clone()))]).unwrap();
        for cyc in 0..4 {
            let want = (a.vulnerability_at(cyc) + 3.0 * b.vulnerability_at(cyc)) / 4.0;
            assert!((c.vulnerability_at(cyc) - want).abs() < 1e-12, "cycle {cyc}");
        }
    }

    #[test]
    fn cumulative_consistent_with_pointwise() {
        let a = IntervalTrace::from_levels(&[1.0, 0.0, 0.5, 0.25, 0.0, 1.0]).unwrap();
        let b = IntervalTrace::from_levels(&[0.0, 0.5, 0.5, 1.0, 0.25, 0.0]).unwrap();
        let c = CompositeTrace::new(vec![(2.0, arc(a)), (5.0, arc(b))]).unwrap();
        let mut acc = 0.0;
        for cyc in 0..6 {
            assert!((c.cumulative_within_period(cyc) - acc).abs() < 1e-12);
            acc += c.vulnerability_at(cyc);
        }
        assert!((c.cumulative_within_period(6) - acc).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_periods_and_bad_weights() {
        let a = arc(IntervalTrace::busy_idle(2, 2).unwrap());
        let b = arc(IntervalTrace::busy_idle(3, 3).unwrap());
        assert!(CompositeTrace::new(vec![(1.0, a.clone()), (1.0, b)]).is_err());
        assert!(CompositeTrace::new(vec![(0.0, a.clone())]).is_err());
        assert!(CompositeTrace::new(vec![(-1.0, a.clone())]).is_err());
        assert!(CompositeTrace::new(vec![(f64::NAN, a)]).is_err());
        assert!(CompositeTrace::new(vec![]).is_err());
    }
}
