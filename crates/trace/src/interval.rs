//! Run-length-encoded vulnerability traces.

use serde::{Deserialize, Serialize};
use serr_types::SerrError;

use crate::VulnerabilityTrace;

/// One run of cycles sharing a vulnerability value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Length of the run in cycles (> 0).
    pub len: u64,
    /// Vulnerability of every cycle in the run, in `[0, 1]`.
    pub vulnerability: f64,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `len` is zero or
    /// `vulnerability` is outside `[0, 1]`.
    pub fn new(len: u64, vulnerability: f64) -> Result<Self, SerrError> {
        if len == 0 {
            return Err(SerrError::invalid_trace("segment length must be positive"));
        }
        if !(0.0..=1.0).contains(&vulnerability) {
            return Err(SerrError::invalid_trace(format!(
                "vulnerability {vulnerability} outside [0,1]"
            )));
        }
        Ok(Segment { len, vulnerability })
    }
}

/// A periodic vulnerability trace stored as run-length-encoded segments with
/// prefix sums, giving `O(log n)` point and cumulative queries.
///
/// This is the workhorse representation: the timing simulator's dense output
/// is compressed into it, and the paper's synthesized day/week workloads
/// (periods around 10¹⁴ cycles) are just two segments.
///
/// ```
/// use serr_trace::{IntervalTrace, Segment, VulnerabilityTrace};
///
/// let t = IntervalTrace::from_segments(vec![
///     Segment::new(10, 1.0).unwrap(),
///     Segment::new(30, 0.25).unwrap(),
/// ]).unwrap();
/// assert_eq!(t.period_cycles(), 40);
/// assert_eq!(t.avf(), (10.0 + 7.5) / 40.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalTrace {
    /// Exclusive end cycle of each segment (strictly increasing; last =
    /// period).
    ends: Vec<u64>,
    /// Vulnerability of each segment.
    values: Vec<f64>,
    /// Cumulative vulnerability up to each segment start:
    /// `prefix[i] = Σ_{j<i} len_j · v_j`.
    prefix: Vec<f64>,
}

impl PartialEq for IntervalTrace {
    /// Compares the defining run-length data; the `prefix` cache is derived
    /// from it (up to floating-point association order) and excluded.
    fn eq(&self, other: &Self) -> bool {
        self.ends == other.ends && self.values == other.values
    }
}

impl IntervalTrace {
    /// Builds a trace from consecutive segments.
    ///
    /// Adjacent segments with equal vulnerability are merged.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `segments` is empty or the
    /// total period overflows `u64`.
    pub fn from_segments(segments: Vec<Segment>) -> Result<Self, SerrError> {
        if segments.is_empty() {
            return Err(SerrError::invalid_trace("trace must contain at least one segment"));
        }
        let mut ends: Vec<u64> = Vec::with_capacity(segments.len());
        let mut values: Vec<f64> = Vec::with_capacity(segments.len());
        let mut prefix = Vec::with_capacity(segments.len());
        let mut end: u64 = 0;
        let mut cum = 0.0_f64;
        for seg in segments {
            if let (Some(last_v), Some(last_e)) = (values.last_mut(), ends.last_mut()) {
                if *last_v == seg.vulnerability {
                    *last_e = last_e
                        .checked_add(seg.len)
                        .ok_or_else(|| SerrError::invalid_trace("period overflows u64"))?;
                    end = *last_e;
                    cum += seg.len as f64 * seg.vulnerability;
                    continue;
                }
            }
            prefix.push(cum);
            end = end
                .checked_add(seg.len)
                .ok_or_else(|| SerrError::invalid_trace("period overflows u64"))?;
            ends.push(end);
            values.push(seg.vulnerability);
            cum += seg.len as f64 * seg.vulnerability;
        }
        Ok(IntervalTrace { ends, values, prefix })
    }

    /// A trace with one segment: constant vulnerability for `period` cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] on a zero period or out-of-range
    /// vulnerability.
    pub fn constant(period: u64, vulnerability: f64) -> Result<Self, SerrError> {
        IntervalTrace::from_segments(vec![Segment::new(period, vulnerability)?])
    }

    /// The paper's canonical counter-example shape (Section 3.1.2): fully
    /// vulnerable for `busy` cycles, fully masked for `idle` cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if both spans are zero or either
    /// is invalid.
    pub fn busy_idle(busy: u64, idle: u64) -> Result<Self, SerrError> {
        match (busy, idle) {
            (0, 0) => Err(SerrError::invalid_trace("busy and idle cannot both be zero")),
            (0, idle) => IntervalTrace::constant(idle, 0.0),
            (busy, 0) => IntervalTrace::constant(busy, 1.0),
            (busy, idle) => IntervalTrace::from_segments(vec![
                Segment::new(busy, 1.0).expect("busy > 0"),
                Segment::new(idle, 0.0).expect("idle > 0"),
            ]),
        }
    }

    /// Compresses per-cycle vulnerabilities into runs.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `levels` is empty or any value
    /// is outside `[0, 1]`.
    pub fn from_levels(levels: &[f64]) -> Result<Self, SerrError> {
        if levels.is_empty() {
            return Err(SerrError::invalid_trace("trace must contain at least one cycle"));
        }
        let mut builder = IntervalTraceBuilder::new();
        for &v in levels {
            builder.push_cycles(1, v)?;
        }
        builder.finish()
    }

    /// Compresses per-cycle busy flags (`true` ⇒ vulnerability 1).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `flags` is empty.
    pub fn from_bools(flags: &[bool]) -> Result<Self, SerrError> {
        if flags.is_empty() {
            return Err(SerrError::invalid_trace("trace must contain at least one cycle"));
        }
        let mut builder = IntervalTraceBuilder::new();
        for &b in flags {
            builder.push_cycles(1, if b { 1.0 } else { 0.0 })?;
        }
        builder.finish()
    }

    /// Number of stored segments (after merging).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.values.len()
    }

    /// Aggregates the trace into fixed windows of `window` cycles, each
    /// carrying the *average* vulnerability of the cycles it covers (the
    /// final window may be shorter).
    ///
    /// Coarsening preserves the AVF exactly and the cumulative
    /// vulnerability to within one window; it is the standard way to keep
    /// 10⁸-cycle simulator traces compact when the analysis horizon (mean
    /// time between raw errors) is many windows long.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `window` is zero.
    pub fn coarsen(&self, window: u64) -> Result<IntervalTrace, SerrError> {
        if window == 0 {
            return Err(SerrError::invalid_trace("window must be positive"));
        }
        let period = self.period_cycles();
        if window >= period {
            return IntervalTrace::constant(period, self.avf());
        }
        let mut builder = IntervalTraceBuilder::new();
        let mut start = 0u64;
        while start < period {
            let end = (start + window).min(period);
            let mass = self.cumulative_within_period(end) - self.cumulative_within_period(start);
            let v = (mass / (end - start) as f64).clamp(0.0, 1.0);
            builder.push_cycles(end - start, v)?;
            start = end;
        }
        builder.finish()
    }

    /// Iterates over the segments in order.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.ends.iter().enumerate().map(move |(i, &end)| {
            let start = if i == 0 { 0 } else { self.ends[i - 1] };
            Segment { len: end - start, vulnerability: self.values[i] }
        })
    }

    /// Index of the segment containing `cycle` (already reduced mod period).
    fn segment_index(&self, cycle_in_period: u64) -> usize {
        self.ends.partition_point(|&e| e <= cycle_in_period)
    }
}

impl VulnerabilityTrace for IntervalTrace {
    fn period_cycles(&self) -> u64 {
        *self.ends.last().expect("non-empty by construction")
    }

    fn vulnerability_at(&self, cycle: u64) -> f64 {
        let c = cycle % self.period_cycles();
        self.values[self.segment_index(c)]
    }

    fn cumulative_within_period(&self, r: u64) -> f64 {
        let period = self.period_cycles();
        assert!(r <= period, "cycle {r} beyond period {period}");
        if r == period {
            let last = self.values.len() - 1;
            let start = if last == 0 { 0 } else { self.ends[last - 1] };
            return self.prefix[last] + (period - start) as f64 * self.values[last];
        }
        let i = self.segment_index(r);
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        self.prefix[i] + (r - start) as f64 * self.values[i]
    }

    fn breakpoints(&self) -> Vec<u64> {
        self.ends.clone()
    }

    fn span_count_hint(&self) -> u64 {
        self.ends.len() as u64
    }
}

/// Incremental builder for [`IntervalTrace`], used by the timing simulator
/// to append per-cycle observations without buffering the whole execution.
///
/// ```
/// use serr_trace::{IntervalTraceBuilder, VulnerabilityTrace};
///
/// let mut b = IntervalTraceBuilder::new();
/// b.push_cycles(100, 1.0).unwrap();
/// b.push_cycles(50, 0.0).unwrap();
/// b.push_cycles(25, 0.0).unwrap(); // merged with the previous run
/// let t = b.finish().unwrap();
/// assert_eq!(t.segment_count(), 2);
/// assert_eq!(t.period_cycles(), 175);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IntervalTraceBuilder {
    segments: Vec<Segment>,
}

impl IntervalTraceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        IntervalTraceBuilder::default()
    }

    /// Appends `len` cycles at `vulnerability`, merging with the previous run
    /// when the value repeats. Zero-length pushes are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if `vulnerability` is outside
    /// `[0, 1]`.
    pub fn push_cycles(&mut self, len: u64, vulnerability: f64) -> Result<&mut Self, SerrError> {
        if len == 0 {
            return Ok(self);
        }
        if !(0.0..=1.0).contains(&vulnerability) {
            return Err(SerrError::invalid_trace(format!(
                "vulnerability {vulnerability} outside [0,1]"
            )));
        }
        if let Some(last) = self.segments.last_mut() {
            if last.vulnerability == vulnerability {
                last.len += len;
                return Ok(self);
            }
        }
        self.segments.push(Segment { len, vulnerability });
        Ok(self)
    }

    /// Number of cycles appended so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Finalizes the trace.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] if nothing was appended.
    pub fn finish(self) -> Result<IntervalTrace, SerrError> {
        IntervalTrace::from_segments(self.segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_idle_matches_paper_example() {
        // Section 3.1.2: active for A cycles, idle for L-A.
        let t = IntervalTrace::busy_idle(25, 75).unwrap();
        assert_eq!(t.period_cycles(), 100);
        assert_eq!(t.avf(), 0.25);
        assert_eq!(t.vulnerability_at(0), 1.0);
        assert_eq!(t.vulnerability_at(24), 1.0);
        assert_eq!(t.vulnerability_at(25), 0.0);
        assert_eq!(t.vulnerability_at(99), 0.0);
        // Wraps around.
        assert_eq!(t.vulnerability_at(100), 1.0);
    }

    #[test]
    fn busy_idle_degenerate_cases() {
        assert_eq!(IntervalTrace::busy_idle(10, 0).unwrap().avf(), 1.0);
        assert_eq!(IntervalTrace::busy_idle(0, 10).unwrap().avf(), 0.0);
        assert!(IntervalTrace::busy_idle(0, 0).is_err());
    }

    #[test]
    fn cumulative_within_period_piecewise() {
        let t = IntervalTrace::from_segments(vec![
            Segment::new(4, 0.5).unwrap(),
            Segment::new(4, 1.0).unwrap(),
            Segment::new(2, 0.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(t.cumulative_within_period(0), 0.0);
        assert_eq!(t.cumulative_within_period(2), 1.0);
        assert_eq!(t.cumulative_within_period(4), 2.0);
        assert_eq!(t.cumulative_within_period(6), 4.0);
        assert_eq!(t.cumulative_within_period(8), 6.0);
        assert_eq!(t.cumulative_within_period(10), 6.0);
        assert_eq!(t.avf(), 0.6);
    }

    #[test]
    #[should_panic(expected = "beyond period")]
    fn cumulative_beyond_period_panics() {
        let t = IntervalTrace::busy_idle(1, 1).unwrap();
        let _ = t.cumulative_within_period(3);
    }

    #[test]
    fn adjacent_equal_segments_merge() {
        let t = IntervalTrace::from_segments(vec![
            Segment::new(5, 1.0).unwrap(),
            Segment::new(5, 1.0).unwrap(),
            Segment::new(5, 0.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(t.segment_count(), 2);
        assert_eq!(t.period_cycles(), 15);
        assert_eq!(t.cumulative_within_period(15), 10.0);
    }

    #[test]
    fn from_levels_and_from_bools_agree() {
        let flags = [true, true, false, true, false, false];
        let levels: Vec<f64> = flags.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let a = IntervalTrace::from_bools(&flags).unwrap();
        let b = IntervalTrace::from_levels(&levels).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.segment_count(), 4);
        for c in 0..6 {
            assert_eq!(a.vulnerability_at(c), levels[c as usize]);
        }
    }

    #[test]
    fn segments_iterator_roundtrip() {
        let original = vec![
            Segment::new(3, 0.25).unwrap(),
            Segment::new(7, 0.75).unwrap(),
            Segment::new(1, 0.0).unwrap(),
        ];
        let t = IntervalTrace::from_segments(original.clone()).unwrap();
        let out: Vec<Segment> = t.segments().collect();
        assert_eq!(out, original);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(Segment::new(0, 0.5).is_err());
        assert!(Segment::new(5, -0.1).is_err());
        assert!(Segment::new(5, 1.1).is_err());
        assert!(IntervalTrace::from_segments(vec![]).is_err());
        assert!(IntervalTrace::from_levels(&[]).is_err());
        assert!(IntervalTrace::from_levels(&[2.0]).is_err());
    }

    #[test]
    fn builder_ignores_zero_and_merges() {
        let mut b = IntervalTraceBuilder::new();
        b.push_cycles(0, 1.0).unwrap();
        b.push_cycles(3, 1.0).unwrap();
        b.push_cycles(3, 1.0).unwrap();
        b.push_cycles(2, 0.5).unwrap();
        assert_eq!(b.cycles(), 8);
        let t = b.finish().unwrap();
        assert_eq!(t.segment_count(), 2);
        assert_eq!(t.period_cycles(), 8);
    }

    #[test]
    fn empty_builder_errors() {
        assert!(IntervalTraceBuilder::new().finish().is_err());
    }

    #[test]
    fn coarsen_preserves_avf_and_bounds_cumulative_drift() {
        let levels: Vec<f64> = (0..10_000)
            .map(|i| if (i / 100) % 3 == 0 { 1.0 } else { (i % 5) as f64 / 8.0 })
            .collect();
        let fine = IntervalTrace::from_levels(&levels).unwrap();
        for window in [7u64, 64, 1000] {
            let coarse = fine.coarsen(window).unwrap();
            assert_eq!(coarse.period_cycles(), fine.period_cycles());
            assert!((coarse.avf() - fine.avf()).abs() < 1e-12, "window {window}");
            assert!(coarse.segment_count() <= (10_000 / window + 2) as usize);
            // Cumulative drift bounded by one window of mass.
            for r in (0..=10_000).step_by(500) {
                let d =
                    (coarse.cumulative_within_period(r) - fine.cumulative_within_period(r)).abs();
                assert!(d <= window as f64, "window {window}, r {r}: drift {d}");
            }
        }
        // Degenerate cases.
        assert!(fine.coarsen(0).is_err());
        let flat = fine.coarsen(1_000_000).unwrap();
        assert_eq!(flat.segment_count(), 1);
        assert!((flat.avf() - fine.avf()).abs() < 1e-12);
    }

    #[test]
    fn day_scale_period_is_exact() {
        // 12h busy / 12h idle at 2 GHz: 8.64e13 cycles per half.
        let half = 43_200u64 * 2_000_000_000;
        let t = IntervalTrace::busy_idle(half, half).unwrap();
        assert_eq!(t.period_cycles(), 2 * half);
        assert_eq!(t.avf(), 0.5);
        assert_eq!(t.cumulative_within_period(half), half as f64);
        assert_eq!(t.vulnerability_at(half - 1), 1.0);
        assert_eq!(t.vulnerability_at(half), 0.0);
    }
}
