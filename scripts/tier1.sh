#!/usr/bin/env bash
# Tier-1 gate: the whole workspace must build in release mode and every
# test must pass. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
