#!/usr/bin/env bash
# Tier-1 gate: the whole workspace must build in release mode and every
# test must pass. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Storage gate: the durable-store suites by name — the CRC-paged container
# (serr-store), the binary journal/cache ports in serr-core, and the
# workspace-level durability acceptance (JSONL migration + torn-write
# recovery, bit-identical at 1 and 8 worker threads). All of these already
# ran inside the workspace `cargo test` above; running them addressed keeps
# a storage regression from hiding in a long test log.
cargo test -q -p serr-store
cargo test -q --test storage_durability

# Formatting gate: the committed rustfmt.toml is the single style arbiter;
# a diff that disagrees with it fails fast here rather than in review.
cargo fmt --check

# Fault-injection tests again in release mode with debug assertions armed:
# the injectors and the Monte Carlo chaos hooks carry debug_assert range
# checks (bit positions, corruption offsets, poison factors, chunk
# accounting) that plain --release would compile out and that the dev
# profile runs without release codegen. Scoped to the two injection-bearing
# crates so the gate stays fast.
RUSTFLAGS="-C debug-assertions" cargo test -q --release -p serr-inject -p serr-mc

# Chaos smoke campaign: a small fixed-seed fault-injection run across all
# fifteen estimator-level injector kinds (the four store-* faults against
# the binary journal, and trace-transform corruption of the protection
# pipeline's output) must uphold the detect-or-degrade invariant (the
# binary exits nonzero on any silently-wrong result).
cargo run --release -p serr-bench --bin chaos_campaign -- --campaigns 30 --seed 7 --trials 3000

# Perf smoke: regenerates BENCH_engines.json (schema v10, carrying a
# `storage` section — binary-vs-JSONL journal resume time and mmap-vs-read
# cache load time — a `models` section: the AVF+SOFR-vs-MC comparison
# under the ECC/scrub/delay protection transforms — and a `sweep_kernel`
# section: the 32-point shared-stream duel) and asserts five perf
# contracts — the Λ-inversion sampler stays >=10x faster than the
# event-loop walk, the batched inversion sampler stays >=5x faster than the
# scalar one, the binary journal resume stays >=5x faster than the JSONL
# parse it replaced on a dense-trace workload, the no-protection
# transform path adds <=5% to trace compilation, and the shared-stream
# sweep kernel stays >=3x faster than independent per-point runs while
# staying bit-identical to them at 1 and 8 threads — the binary aborts if
# any contract regresses.
cargo run --release -p serr-bench --bin bench_smoke -- target/bench-smoke.json

# Protection smoke: every transform in the --protect algebra is AVF-
# monotone (protective), so a scrubbed run can never report a worse MTTF
# than the unprotected baseline. The AVF-step MTTF is deterministic (no
# Monte Carlo noise), so >= holds exactly; the awk filter normalizes the
# human-readable unit (s/days/years) before comparing.
mttf_avf_step_s() {
  awk '/MTTF, AVF step/ {
    v = $(NF-1) + 0.0; u = $NF
    if (u == "years") v *= 31536000; else if (u == "days") v *= 86400
    print v
  }'
}
BASE_MTTF=$(cargo run --release --bin serr -- \
  mttf --workload day --n-s 1e8 --trials 2000 | mttf_avf_step_s)
SCRUB_MTTF=$(cargo run --release --bin serr -- \
  mttf --workload day --n-s 1e8 --trials 2000 --protect scrub:1e11 | mttf_avf_step_s)
awk -v b="$BASE_MTTF" -v s="$SCRUB_MTTF" 'BEGIN {
  if (b <= 0.0 || s < b) {
    printf "protection smoke: scrubbed MTTF %s fell below baseline %s\n", s, b
    exit 1
  }
}'

# Observability smoke: a metrics-instrumented mttf run must produce
# parseable JSONL with per-stage timings and at least one Monte Carlo
# convergence snapshot, validated by the obs_check binary. SERR_THREADS=3
# exercises the telemetry path under the parallel fold (sequence keys are
# thread-count invariant by contract).
mkdir -p target
SERR_THREADS=3 cargo run --release --bin serr -- \
  mttf --workload day --n-s 1e8 --trials 20000 --metrics target/obs-smoke.jsonl
cargo run --release -p serr-bench --bin obs_check -- target/obs-smoke.jsonl

# Service smoke: bring up the `serr serve` daemon on a unix socket, drive
# it with `serr request` (mttf, sofr, sweep, stats), then shut it down
# gracefully. Every response is one JSONL line with a typed terminal
# state; the daemon must drain and exit zero on the shutdown request. The
# sweep request rides the shared-stream kernel server-side and must come
# back as one `result` line carrying every point.
SERVE_DIR="$(mktemp -d)"
SOCK="$SERVE_DIR/serr.sock"
cargo run --release --bin serr -- \
  serve --bind "unix:$SOCK" --journal-dir "$SERVE_DIR/journal" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "serve smoke: daemon never bound $SOCK" >&2; exit 1; }
REQ=(cargo run --release --bin serr -- request --connect "unix:$SOCK")
"${REQ[@]}" --cmd mttf -w duty:0.001:0.5 --rate 1e6 --trials 2000 \
  | grep -q '"state":"result"'
"${REQ[@]}" --cmd sofr -w duty:0.001:0.5 --rate 1e6 -c 100 --trials 2000 \
  | grep -q '"state":"result"'
"${REQ[@]}" --cmd sweep -w duty:0.001:0.5 --rates 1e6,2e6,4e6 --trials 2000 \
  | grep '"state":"result"' | grep -q '"points"'
"${REQ[@]}" --cmd stats | grep -q '"counters"'
"${REQ[@]}" --cmd shutdown | grep -q '"shutdown":true'
wait "$SERVE_PID"

# Store inspect smoke: the daemon just journaled its results into the
# CRC-paged binary store; `serr store inspect` must dump its header and
# page table and report an undamaged file. Capture the dump once instead of
# piping straight into `grep -q`: early-exit grep closes the pipe while serr
# is still printing the page table, which panics it with SIGPIPE once the
# store (now carrying sweep results too) outgrows the pipe buffer.
RESULTS_STORE=$(ls "$SERVE_DIR"/journal/serve-results-*.store)
INSPECT_OUT=$(cargo run --release --bin serr -- store inspect "$RESULTS_STORE")
printf '%s\n' "$INSPECT_OUT" >&2
grep -q 'checkpoint-journal' <<<"$INSPECT_OUT"
grep -q 'damage          : none' <<<"$INSPECT_OUT"
rm -rf "$SERVE_DIR"

# Robustness gate: no `.unwrap()` in library or binary code — a poisoned
# design point must surface as a typed error, never a panic path someone
# forgot about. Test code (#[cfg(test)] and tests//benches/ targets) is
# exempt, which is exactly what the --lib --bins target selection gives us.
# `unwrap_used` is a restriction-group lint, so `-A clippy::all` silences
# the default lints without masking it. `.expect("reason")` stays allowed:
# it documents why the failure is impossible.
cargo clippy --workspace --lib --bins -- -A clippy::all -D clippy::unwrap_used \
  -D clippy::neg_cmp_op_on_partial_ord -D clippy::manual_clamp \
  -D clippy::manual_range_contains -D clippy::manual_is_multiple_of \
  -D clippy::needless_return -D clippy::write_with_newline

# Observability gate: library crates must not print to stderr/stdout with
# the print macros — diagnostics go through serr-obs typed events (the
# sanctioned StderrSink writes via io::stderr(), which the lint does not
# flag). Only the root CLI package is exempt (its lib hosts the command
# runner whose stdout IS the product); --lib keeps the bench/figure
# binaries out of scope automatically.
cargo clippy --workspace --exclude soft-error-analysis --lib -- \
  -A clippy::all -D clippy::print_stderr -D clippy::print_stdout
