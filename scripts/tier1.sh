#!/usr/bin/env bash
# Tier-1 gate: the whole workspace must build in release mode and every
# test must pass. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Robustness gate: no `.unwrap()` in library or binary code — a poisoned
# design point must surface as a typed error, never a panic path someone
# forgot about. Test code (#[cfg(test)] and tests//benches/ targets) is
# exempt, which is exactly what the --lib --bins target selection gives us.
# `unwrap_used` is a restriction-group lint, so `-A clippy::all` silences
# the default lints without masking it. `.expect("reason")` stays allowed:
# it documents why the failure is impossible.
cargo clippy --workspace --lib --bins -- -A clippy::all -D clippy::unwrap_used
