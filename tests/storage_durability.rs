//! Durability acceptance for the binary checkpoint store: legacy JSONL
//! journals migrate once and resume bit-identically, and a write torn
//! mid-page by a kill is truncated away on the next open — with the
//! surviving prefix resumed and the rest recomputed to the same bits —
//! at any worker thread count.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use serr_core::checkpoint::{
    fingerprint, journal_path, legacy_journal_path, run_sweep, JournalRow, SweepOptions,
};
use serr_core::jsonio::Json;
use serr_types::SerrError;

#[derive(Debug, Clone, PartialEq)]
struct Row {
    idx: u64,
    value: f64,
}

impl JournalRow for Row {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("idx".to_owned(), Json::Num(self.idx as f64)),
            ("value".to_owned(), Json::Num(self.value)),
        ])
    }
    fn from_journal(v: &Json) -> Option<Self> {
        Some(Row { idx: v.get("idx")?.as_u64()?, value: v.get("value")?.as_f64()? })
    }
}

/// Awkward floats on purpose: any formatting loss in a journal round trip
/// shows up as a bit difference.
fn eval(_: usize, x: &u64) -> Result<Row, SerrError> {
    let v = (*x as f64).sqrt() * 0.1 + 1.0 / (*x as f64 + 3.0) + 0.2;
    Ok(Row { idx: *x, value: v })
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("serr-storage-durability-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn assert_bit_identical(actual: &[Row], reference: &[Row]) {
    assert_eq!(actual.len(), reference.len());
    for (a, r) in actual.iter().zip(reference) {
        assert_eq!(a.idx, r.idx);
        assert_eq!(
            a.value.to_bits(),
            r.value.to_bits(),
            "row {} differs: {} vs {}",
            a.idx,
            a.value,
            r.value
        );
    }
}

/// One journal line in the legacy JSONL format older releases wrote:
/// `{"i":<index>,"ck":"<fnv-1a hex>","row":<row json>}`, where the checksum
/// is the public part-boundary fingerprint over the decimal index and the
/// row's canonical JSON.
fn legacy_line(index: usize, row: &Json) -> String {
    let row_json = row.to_json();
    let ck = fingerprint(&[&index.to_string(), &row_json]);
    format!("{{\"i\":{index},\"ck\":\"{ck:016x}\",\"row\":{row_json}}}")
}

fn write_legacy_journal(dir: &Path, kind: &str, fp: u64, rows: &[Row]) {
    fs::create_dir_all(dir).expect("create journal dir");
    let path = legacy_journal_path(dir, kind, fp);
    let mut file = fs::File::create(&path).expect("create legacy journal");
    for (i, row) in rows.iter().enumerate() {
        writeln!(file, "{}", legacy_line(i, &row.to_journal())).expect("write legacy line");
    }
}

/// A sweep checkpointed under the legacy JSONL format resumes after the
/// one-time binary migration without recomputing a single migrated point,
/// bit-identically, whether the recompute pool runs 1 worker or 8.
#[test]
fn legacy_jsonl_journal_migrates_once_and_resumes_bit_identically() {
    let items: Vec<u64> = (0..12).collect();
    let reference =
        run_sweep("mig", 1, &items, 1, &SweepOptions::off(), eval).expect("reference sweep").rows;

    for threads in [1usize, 8] {
        let dir = scratch(&format!("migrate-t{threads}"));
        let kind = "mig";
        let fp = fingerprint(&["storage-durability", "migration", &threads.to_string()]);
        // A legacy journal holding the first 8 points — the on-disk state
        // a pre-binary release left behind mid-sweep.
        write_legacy_journal(&dir, kind, fp, &reference[..8]);

        let calls = AtomicUsize::new(0);
        let opts = SweepOptions::resume().in_dir(&dir);
        let report = run_sweep(kind, fp, &items, threads, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval(i, x)
        })
        .expect("resumed sweep");
        assert_eq!(report.resumed, 8, "threads={threads}: all legacy rows resume");
        assert_eq!(calls.load(Ordering::Relaxed), 4, "threads={threads}: only the tail computes");
        assert_bit_identical(&report.rows, &reference);

        let store = journal_path(&dir, kind, fp);
        let legacy = legacy_journal_path(&dir, kind, fp);
        assert!(store.exists(), "threads={threads}: migration wrote the binary journal");
        assert!(!legacy.exists(), "threads={threads}: the legacy journal is read once, then gone");

        // The migrated journal now carries all 12 points.
        let calls = AtomicUsize::new(0);
        let second = run_sweep(kind, fp, &items, threads, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval(i, x)
        })
        .expect("second resume");
        assert_eq!(calls.load(Ordering::Relaxed), 0, "threads={threads}");
        assert_eq!(second.resumed, 12, "threads={threads}");
        assert_bit_identical(&second.rows, &reference);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A kill mid-append leaves a torn final page. The next open must truncate
/// the tear, resume every fully-committed point, recompute the rest, and
/// end with rows bit-identical to an uninterrupted run — at 1 worker and
/// at 8.
#[test]
fn torn_mid_page_write_is_truncated_and_resume_is_bit_identical() {
    let items: Vec<u64> = (0..12).collect();
    let reference =
        run_sweep("torn", 1, &items, 1, &SweepOptions::off(), eval).expect("reference sweep").rows;

    for threads in [1usize, 8] {
        let dir = scratch(&format!("torn-t{threads}"));
        let kind = "torn";
        let fp = fingerprint(&["storage-durability", "torn", &threads.to_string()]);
        let opts = SweepOptions::resume().in_dir(&dir);

        // "Killed" run: points past 6 fail, so the journal commits pages
        // for points 0..=6 only.
        let partial = run_sweep(kind, fp, &items, threads, &opts, |i, x| {
            if *x > 6 {
                return Err(SerrError::invalid_config("simulated crash"));
            }
            eval(i, x)
        })
        .expect("partial sweep");
        assert_eq!(partial.rows.len(), 7);

        // Tear the final append mid-page: a kill between write and fsync.
        let store = journal_path(&dir, kind, fp);
        let bytes = fs::read(&store).expect("read journal");
        let torn = &bytes[..bytes.len() - 7];
        fs::write(&store, torn).expect("write torn journal");

        // Resume: the torn page (one point) is dropped and recomputed, the
        // committed prefix is trusted, and the rows come back bit-exact.
        let calls = AtomicUsize::new(0);
        let report = run_sweep(kind, fp, &items, threads, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval(i, x)
        })
        .expect("resumed sweep");
        assert_eq!(report.resumed, 6, "threads={threads}: tear costs exactly the torn page");
        assert_eq!(calls.load(Ordering::Relaxed), 6, "threads={threads}");
        assert!(report.failures.is_empty(), "threads={threads}");
        assert_bit_identical(&report.rows, &reference);

        // The healed journal is whole again: nothing recomputes.
        let calls = AtomicUsize::new(0);
        let third = run_sweep(kind, fp, &items, threads, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval(i, x)
        })
        .expect("third sweep");
        assert_eq!(calls.load(Ordering::Relaxed), 0, "threads={threads}");
        assert_eq!(third.resumed, 12, "threads={threads}");
        assert_bit_identical(&third.rows, &reference);
        let _ = fs::remove_dir_all(&dir);
    }
}
