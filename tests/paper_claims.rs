//! End-to-end checks of the paper's headline claims, at reduced (but
//! non-trivial) experiment sizes. EXPERIMENTS.md records the full-size runs.

use serr_analytic::fig::{fig3_series, fig4_series};
use serr_core::experiments::{fig5, fig6b, sec5_1, sec5_4, ExperimentConfig};
use serr_core::prelude::*;
use serr_mc::MonteCarloConfig;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        sim_instructions: 60_000,
        seed: 42,
        mc: MonteCarloConfig { trials: 40_000, ..Default::default() },
        frequency: Frequency::base(),
    }
}

/// Figure 3's claim: errors small at the baseline raw error rate, large at
/// 5x, growing with the loop size L.
#[test]
fn figure3_shape() {
    let rows = fig3_series(16);
    let at = |scale: f64, days: f64| {
        rows.iter()
            .find(|r| r.scale == scale && r.l_days == days)
            .expect("row exists")
            .relative_error
    };
    assert!(at(1.0, 1.0) < 0.01);
    assert!(at(1.0, 16.0) < 0.08);
    assert!(at(5.0, 16.0) > 0.15);
    assert!(at(3.0, 16.0) > at(3.0, 4.0));
    assert!(at(5.0, 8.0) > at(3.0, 8.0));
}

/// Figure 4's claim: "the error grows from 15% for a system with two
/// components to about 32% for a system with 32 components."
#[test]
fn figure4_shape() {
    let rows = fig4_series(32).expect("quadrature");
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert!((first.relative_error - 0.15).abs() < 0.02, "N=2: {}", first.relative_error);
    assert!((last.relative_error - 0.33).abs() < 0.04, "N=32: {}", last.relative_error);
    assert!(rows.windows(2).all(|w| w[1].relative_error > w[0].relative_error));
}

/// Section 5.1's claim: for today's uniprocessors running SPEC, AVF and
/// SOFR match Monte Carlo (paper: < 0.5%; here bounded by MC noise at the
/// reduced trial count).
#[test]
fn section5_1_uniprocessor_valid() {
    let rows = sec5_1(&["gzip", "swim", "mcf"], &cfg()).expect("pipeline");
    for row in &rows {
        assert!(
            row.max_component_error < 0.02,
            "{}: AVF err {}",
            row.benchmark,
            row.max_component_error
        );
        assert!(row.sofr_error < 0.02, "{}: SOFR err {}", row.benchmark, row.sofr_error);
    }
}

/// Figure 5's claim: the AVF step breaks for the synthesized workloads once
/// N×S is large (paper: significant errors, up to ~90%, for N×S ≥ 1e9),
/// while staying fine below.
#[test]
fn figure5_avf_breaks_at_large_n_s() {
    let c = cfg();
    for workload in [Workload::Day, Workload::Week] {
        let rows = fig5(&[workload], &[1e7, 1e12], &c).expect("pipeline");
        assert!(rows[0].error < 0.05, "{workload}: small N×S err {}", rows[0].error);
        assert!(rows[1].error > 0.30, "{workload}: large N×S err {}", rows[1].error);
        // SoftArch stays accurate at both points (Section 5.4).
        assert!(rows[1].softarch_error < 0.05, "{workload}: softarch {}", rows[1].softarch_error);
    }
}

/// Figure 6(b)'s claim: the SOFR step breaks for synthesized workloads once
/// both C and N×S are large, and is fine for small clusters.
#[test]
fn figure6b_sofr_breaks_at_scale() {
    let rows = fig6b(&[Workload::Day], &[2, 8, 50_000], &[1e8], &cfg()).expect("pipeline");
    assert!(rows[0].error < 0.05, "C=2: {}", rows[0].error);
    assert!(rows[1].error < 0.05, "C=8: {}", rows[1].error);
    assert!(rows[2].error > 0.5, "C=50000: {}", rows[2].error);
    // Error grows with C.
    assert!(rows[2].error > rows[1].error);
}

/// Section 5.4's claim: SoftArch does not exhibit the AVF+SOFR
/// discrepancies anywhere in the design space.
#[test]
fn section5_4_softarch_is_accurate_everywhere() {
    let c = cfg();
    let rows =
        sec5_4(&[Workload::Day, Workload::Week], &[2, 5_000], &[1e8, 1e12], &c).expect("pipeline");
    for r in &rows {
        assert!(
            r.softarch_error_vs_renewal < 1e-4,
            "{} C={} N×S={}: exact err {}",
            r.workload,
            r.c,
            r.n_times_s,
            r.softarch_error_vs_renewal
        );
        assert!(
            r.softarch_error < 0.03,
            "{} C={} N×S={}: vs MC {}",
            r.workload,
            r.c,
            r.n_times_s,
            r.softarch_error
        );
    }
}

/// The paper's overall dichotomy in one test: same workload, same masking
/// model — AVF+SOFR right in one regime and wrong in the other, with the
/// first-principles methods right in both.
#[test]
fn the_limits_of_common_assumptions() {
    let freq = Frequency::base();
    let day = std::sync::Arc::new(serr_workload::synthesized::day(freq));
    let v = Validator::new(freq, MonteCarloConfig { trials: 40_000, ..Default::default() });

    // Terrestrial single server: everything agrees.
    let small =
        v.component(day.as_ref(), RawErrorRate::baseline_per_bit().scale(1e6)).expect("small");
    assert!(small.avf_error_vs_renewal < 1e-4);

    // Space-grade rates: AVF wrong by ~2x, SoftArch still right.
    let large =
        v.component(day.as_ref(), RawErrorRate::baseline_per_bit().scale(5e12)).expect("large");
    assert!(large.avf_error_vs_renewal > 0.5, "{}", large.avf_error_vs_renewal);
    assert!(large.softarch_error_vs_mc < 0.03, "{}", large.softarch_error_vs_mc);
}

/// Section 3.2's underlying claim, tested distributionally: after
/// architectural masking, the time to failure is exponential when λL → 0
/// (Section 3.2.1's Erlang/geometric collapse) and visibly non-exponential
/// for the day workload at large λ — the root cause of the SOFR error.
#[test]
fn masked_ttf_is_exponential_only_in_the_valid_regime() {
    use serr_numeric::ecdf::{ks_critical_value, Ecdf};

    let freq = Frequency::base();
    let day = serr_workload::synthesized::day(freq);
    let n = 5_000u64;

    // Valid regime: λ·L ~ 1e-3. KS against Exp(λ·AVF) must pass.
    let small_rate = RawErrorRate::baseline_per_bit().scale(1e8);
    let mc = MonteCarlo::new(MonteCarloConfig::default());
    let samples = mc.sample_ttfs(&day, small_rate, freq, n).unwrap();
    let eff = small_rate.per_second_value() * 0.5;
    let d_small = Ecdf::new(samples).expect("MC samples contain no NaN").ks_vs_exponential(eff);
    assert!(
        d_small < ks_critical_value(n as usize, 0.01),
        "valid regime should look exponential: KS {d_small}"
    );

    // Invalid regime: λ·L ~ 13. The masked TTF is far from exponential
    // with the AVF-derated rate.
    let big_rate = RawErrorRate::baseline_per_bit().scale(5e11);
    let samples = mc.sample_ttfs(&day, big_rate, freq, n).unwrap();
    let eff = big_rate.per_second_value() * 0.5;
    let d_big = Ecdf::new(samples).expect("MC samples contain no NaN").ks_vs_exponential(eff);
    assert!(
        d_big > 5.0 * ks_critical_value(n as usize, 0.01),
        "invalid regime should be detectably non-exponential: KS {d_big}"
    );
    assert!(d_big > 10.0 * d_small, "KS {d_big} vs {d_small}");
}
