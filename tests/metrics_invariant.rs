//! Thread-count invariance of the estimates AND their telemetry.
//!
//! The engine's determinism contract says a run is bit-identical at any
//! worker-thread count. The observability layer must not weaken that:
//! event sequence keys derive from chunk indices (never scheduling), the
//! per-chunk convergence snapshots are emitted from the main-thread fold
//! in ascending chunk order, and counters aggregate commutatively — so the
//! whole telemetry stream, rendered to JSON, is byte-identical too (modulo
//! wall-clock-valued stage timings, which keep deterministic *keys*).

use serr_core::prelude::*;
use serr_obs::{Event, Obs};

struct Telemetry {
    estimate: MttfEstimate,
    /// Full JSON rendering of every `mc.chunk` convergence event.
    chunk_json: Vec<String>,
    /// `(kind, seq)` for every event, in emission order.
    sequence_keys: Vec<(String, u64)>,
    /// All counters (deterministic; gauges carry wall-clock rates).
    counters: Vec<(String, u64)>,
}

fn observed_run(threads: usize) -> Telemetry {
    let trace = IntervalTrace::busy_idle(1_000, 3_000).expect("valid trace");
    let cfg = MonteCarloConfig { trials: 10_000, threads, seed: 0x0D15_EA5E, ..Default::default() };
    let (obs, sink) = Obs::memory();
    let estimate = MonteCarlo::new(cfg)
        .with_observer(obs.clone())
        .component_mttf(&trace, RawErrorRate::per_year(25.0), Frequency::base())
        .expect("MC run succeeds");
    Telemetry {
        estimate,
        chunk_json: sink.events_of("mc.chunk").iter().map(Event::to_json).collect(),
        sequence_keys: sink.events().iter().map(|e| (e.kind.to_owned(), e.seq)).collect(),
        counters: obs.metrics().snapshot().counters.into_iter().collect(),
    }
}

#[test]
fn telemetry_is_byte_identical_across_thread_counts() {
    let one = observed_run(1);
    let eight = observed_run(8);

    // The estimate itself: bit-identical, observer attached or not.
    assert_eq!(one.estimate, eight.estimate);
    assert_eq!(
        one.estimate.mttf.as_secs().to_bits(),
        eight.estimate.mttf.as_secs().to_bits(),
        "estimates must be bit-identical at 1 vs 8 threads"
    );

    // Convergence snapshots: same count, same keys, same rendered bytes.
    assert!(!one.chunk_json.is_empty(), "run must emit convergence snapshots");
    assert_eq!(one.chunk_json, eight.chunk_json, "mc.chunk JSON must not depend on threads");

    // Every event's (kind, seq) — including stage timings, whose *values*
    // are wall clock but whose keys are program-ordered.
    assert_eq!(one.sequence_keys, eight.sequence_keys);

    // Counters aggregate commutatively.
    assert_eq!(one.counters, eight.counters);
}

#[test]
fn convergence_snapshots_tighten_the_estimator() {
    // The telemetry exists so `--metrics` shows the CI half-width shrinking
    // as chunks fold in; verify the trajectory it reports actually narrows
    // (1/sqrt(n)-ish) from the first snapshot to the last.
    let t = observed_run(4);
    let ci = |line: &str| -> f64 {
        let json = serr_core::jsonio::Json::parse(line).expect("chunk event renders valid JSON");
        json.get("ci95_s").and_then(serr_core::jsonio::Json::as_f64).expect("ci95_s field")
    };
    let first = ci(&t.chunk_json[0]);
    let last = ci(t.chunk_json.last().expect("at least one snapshot"));
    assert!(first.is_finite() && last.is_finite());
    assert!(
        last < first,
        "CI half-width should tighten across chunks: first {first:.3e}, last {last:.3e}"
    );
}
