//! The shared-stream sweep kernel's bit-identity contract, pinned across
//! crate boundaries.
//!
//! `MonteCarlo::component_mttf_multi` amortizes the RNG word stream, the
//! exponent-splice uniforms, and the vectorized log passes over every
//! design point of a sweep — common random numbers across the λ axis. The
//! contract that licenses the sharing is that it must be *invisible* in
//! the numbers:
//!
//! 1. every point is bit-identical to an independent
//!    `MonteCarlo::component_mttf` run with the same seed and sampler;
//! 2. the whole sweep is bit-identical at any thread count;
//! 3. both hold on `--protect`-transformed traces (scrub staircases,
//!    fractional ECC levels) exactly as on raw workload traces;
//! 4. the full validator row built from a kernel estimate equals the row
//!    an independent `Validator::component` call produces.

use std::sync::Arc;

use serr_core::prelude::{Validator, VulnerabilityTrace};
use serr_mc::{MonteCarlo, MonteCarloConfig, MttfEstimate, SamplerKind, StartPhase};
use serr_trace::{IntervalTrace, Transform, TransformPipeline};
use serr_types::{Frequency, RawErrorRate};

fn engine(threads: usize, start_phase: StartPhase) -> MonteCarlo {
    MonteCarlo::new(MonteCarloConfig {
        trials: 8_000,
        seed: 0x5EE9_0001,
        threads,
        sampler: SamplerKind::BatchedInversion,
        start_phase,
        ..Default::default()
    })
}

fn raw_trace() -> IntervalTrace {
    let pattern = [1.0, 1.0, 0.25, 0.0, 0.5, 0.75, 0.0, 0.0];
    let levels: Vec<f64> = pattern.iter().cycle().take(160).copied().collect();
    IntervalTrace::from_levels(&levels).expect("valid trace")
}

fn protected_trace() -> IntervalTrace {
    // The same shapes `--protect scrub:50+ecc:8` feeds the samplers.
    let pipeline = TransformPipeline::new(vec![
        Transform::Scrub { interval_cycles: 50 },
        Transform::EccSecDed { word_bits: 8 },
    ]);
    pipeline.apply_interval(&raw_trace()).expect("pipeline applies")
}

fn sweep_rates() -> Vec<RawErrorRate> {
    [1e-2, 0.5, 2.0, 25.0, 400.0, 9_000.0].iter().map(|&y| RawErrorRate::per_year(y)).collect()
}

fn assert_estimates_bit_equal(a: &MttfEstimate, b: &MttfEstimate, what: &str) {
    assert_eq!(a.mttf.as_secs().to_bits(), b.mttf.as_secs().to_bits(), "{what}: mean drifted");
    assert_eq!(a.relative_ci95().to_bits(), b.relative_ci95().to_bits(), "{what}: CI drifted");
    assert_eq!(a.ttf_seconds.count, b.ttf_seconds.count, "{what}: trial count drifted");
    assert_eq!(a.truncated, b.truncated, "{what}: truncation flag drifted");
    assert_eq!(a.sampler, b.sampler, "{what}: sampler tag drifted");
}

#[test]
fn kernel_points_match_independent_runs_on_raw_and_protected_traces() {
    let freq = Frequency::base();
    let rates = sweep_rates();
    for (tname, trace) in [("raw", raw_trace()), ("protected", protected_trace())] {
        for start in [StartPhase::WorkloadStart, StartPhase::Stationary] {
            let solo_engine = engine(1, start);
            let solo: Vec<MttfEstimate> = rates
                .iter()
                .map(|&r| solo_engine.component_mttf(&trace, r, freq).expect("solo run"))
                .collect();
            let multi = solo_engine
                .component_mttf_multi(&trace, &rates, freq)
                .expect("kernel run")
                .into_iter()
                .map(|p| p.expect("point"))
                .collect::<Vec<_>>();
            assert_eq!(multi.len(), solo.len());
            for (i, (m, s)) in multi.iter().zip(&solo).enumerate() {
                assert_estimates_bit_equal(m, s, &format!("{tname} {start:?} point {i}"));
            }
        }
    }
}

#[test]
fn kernel_sweeps_are_bit_identical_across_thread_counts() {
    let freq = Frequency::base();
    let rates = sweep_rates();
    for (tname, trace) in [("raw", raw_trace()), ("protected", protected_trace())] {
        let baseline: Vec<MttfEstimate> = engine(1, StartPhase::WorkloadStart)
            .component_mttf_multi(&trace, &rates, freq)
            .expect("kernel run")
            .into_iter()
            .map(|p| p.expect("point"))
            .collect();
        for threads in [2usize, 8] {
            let run: Vec<MttfEstimate> = engine(threads, StartPhase::WorkloadStart)
                .component_mttf_multi(&trace, &rates, freq)
                .expect("kernel run")
                .into_iter()
                .map(|p| p.expect("point"))
                .collect();
            for (i, (a, b)) in baseline.iter().zip(&run).enumerate() {
                assert_estimates_bit_equal(
                    a,
                    b,
                    &format!("{tname} point {i} at {threads} threads"),
                );
            }
        }
    }
}

#[test]
fn validator_rows_from_kernel_estimates_match_independent_validation() {
    // The grouped sweep path builds its rows with
    // `Validator::component_with_mc` from kernel estimates; the row must
    // be indistinguishable from the one `Validator::component` computes
    // with its own independent engine run.
    let freq = Frequency::base();
    let rates = sweep_rates();
    let trace: Arc<dyn VulnerabilityTrace> = Arc::new(protected_trace());
    let mc = MonteCarloConfig {
        trials: 8_000,
        seed: 0x5EE9_0001,
        sampler: SamplerKind::BatchedInversion,
        ..Default::default()
    };
    let v = Validator::new(freq, mc);
    let kernel = v.monte_carlo().component_mttf_multi(&*trace, &rates, freq).expect("kernel run");
    for (i, est) in kernel.into_iter().enumerate() {
        let grouped =
            v.component_with_mc(&*trace, rates[i], est.expect("point")).expect("grouped row");
        let solo = v.component(&*trace, rates[i]).expect("solo row");
        assert_eq!(
            grouped.mttf_mc.mttf.as_secs().to_bits(),
            solo.mttf_mc.mttf.as_secs().to_bits(),
            "point {i}: MC mean"
        );
        assert_eq!(
            grouped.mttf_avf.as_secs().to_bits(),
            solo.mttf_avf.as_secs().to_bits(),
            "point {i}: AVF step"
        );
        assert_eq!(
            grouped.avf_error_vs_mc.to_bits(),
            solo.avf_error_vs_mc.to_bits(),
            "point {i}: AVF error"
        );
        assert_eq!(
            grouped.softarch_error_vs_mc.to_bits(),
            solo.softarch_error_vs_mc.to_bits(),
            "point {i}: SoftArch error"
        );
    }
}
