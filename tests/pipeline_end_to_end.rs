//! End-to-end pipeline integration: workload generation → timing simulation
//! → masking traces → serialization → estimation, exercising the public API
//! the way a downstream user would.

use std::sync::Arc;

use serr_core::prelude::*;
use serr_sim::{SimConfig, Simulator};
use serr_trace::{decode_interval_trace, encode_interval_trace};
use serr_workload::{BenchmarkProfile, TraceGenerator};

#[test]
fn simulate_serialize_estimate_roundtrip() {
    // 1. Generate a workload and simulate it.
    let profile = BenchmarkProfile::by_name("bzip2").unwrap();
    let sim = Simulator::new(SimConfig::power4());
    let out = sim.run(TraceGenerator::new(profile, 11), 40_000).unwrap();

    // 2. Serialize the integer-unit masking trace and read it back —
    //    the cache-on-disk path of a long campaign.
    let bytes = encode_interval_trace(&out.traces.int_unit);
    let decoded = decode_interval_trace(&bytes).unwrap();
    assert_eq!(decoded, out.traces.int_unit);

    // 3. Estimate MTTF from the decoded trace; it must match the original.
    let rate = RawErrorRate::per_year(1e5);
    let freq = Frequency::base();
    let a = serr_core::prelude::analytic::renewal::renewal_mttf(&out.traces.int_unit, rate, freq)
        .unwrap();
    let b = serr_core::prelude::analytic::renewal::renewal_mttf(&decoded, rate, freq).unwrap();
    assert!((a.as_secs() - b.as_secs()).abs() < 1e-9);
}

#[test]
fn every_benchmark_profile_survives_the_full_pipeline() {
    // Small budget, but all 21 profiles must simulate, produce valid
    // traces, and yield finite estimates.
    let sim = Simulator::new(SimConfig::power4());
    let rates = UnitRates::paper();
    for profile in BenchmarkProfile::all() {
        let name = profile.name;
        let out = sim
            .run(TraceGenerator::new(profile, 3), 8_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.stats.instructions, 8_000, "{name}");
        assert!(out.stats.ipc() > 0.02, "{name}: ipc {}", out.stats.ipc());

        let t = &out.traces;
        for (unit, trace) in [
            ("int", &t.int_unit),
            ("fp", &t.fp_unit),
            ("decode", &t.decode),
            ("regfile", &t.regfile),
        ] {
            let avf = trace.avf();
            assert!((0.0..=1.0).contains(&avf), "{name}/{unit}: avf {avf}");
            assert_eq!(trace.period_cycles(), out.stats.cycles, "{name}/{unit}");
        }
        // The decode unit is always exercised.
        assert!(t.decode.avf() > 0.0, "{name}: decode never busy?");

        // AVF-step estimate exists for every failing component.
        if !t.regfile.is_never_vulnerable() {
            let mttf = serr_core::avf::avf_step_mttf(&t.regfile, rates.regfile).unwrap();
            assert!(mttf.as_years().is_finite());
        }
    }
}

#[test]
fn int_benchmarks_idle_fp_fp_benchmarks_use_it() {
    let sim = Simulator::new(SimConfig::power4());
    for profile in BenchmarkProfile::all() {
        let suite = profile.suite;
        let name = profile.name;
        let out = sim.run(TraceGenerator::new(profile, 5), 10_000).unwrap();
        match suite {
            Suite::Int => assert_eq!(
                out.traces.fp_unit.avf(),
                0.0,
                "{name} is an integer benchmark but used FP units"
            ),
            Suite::Fp => assert!(
                out.traces.fp_unit.avf() > 0.02,
                "{name} is an FP benchmark but FP AVF = {}",
                out.traces.fp_unit.avf()
            ),
        }
    }
}

#[test]
fn validator_runs_on_fresh_simulation_output() {
    let sim = Simulator::new(SimConfig::power4());
    let profile = BenchmarkProfile::by_name("equake").unwrap();
    let out = sim.run(TraceGenerator::new(profile, 9), 30_000).unwrap();
    let v = Validator::new(
        Frequency::base(),
        MonteCarloConfig { trials: 20_000, ..Default::default() },
    );
    let rates = UnitRates::paper();
    // Crank the rate so the comparison is non-trivial but still valid-regime.
    let cv = v.component(&out.traces.regfile, rates.regfile.scale(1e6)).unwrap();
    assert!(cv.avf > 0.0);
    assert!(cv.avf_error_vs_renewal < 0.01, "{}", cv.avf_error_vs_renewal);

    let parts: Vec<(RawErrorRate, Arc<dyn VulnerabilityTrace>)> = vec![
        (rates.int_unit.scale(1e6), Arc::new(out.traces.int_unit.clone())),
        (rates.fp_unit.scale(1e6), Arc::new(out.traces.fp_unit.clone())),
        (rates.decode.scale(1e6), Arc::new(out.traces.decode.clone())),
        (rates.regfile.scale(1e6), Arc::new(out.traces.regfile.clone())),
    ];
    let sv = v.system_parts(&parts).unwrap();
    assert!(sv.sofr_error_vs_renewal < 0.02, "{}", sv.sofr_error_vs_renewal);
    assert!(sv.mttf_sofr.as_secs() <= sv.mttf_renewal.as_secs() * 1.05);
}

#[test]
fn design_space_points_drive_the_validator() {
    // A smoke sweep over a corner of Table 2 through the public API.
    let space = DesignSpace {
        workloads: vec![Workload::Day],
        c_values: vec![2, 8],
        n_times_s: vec![1e6, 1e8],
    };
    let freq = Frequency::base();
    let day: Arc<dyn VulnerabilityTrace> = Arc::new(serr_workload::synthesized::day(freq));
    let v = Validator::new(freq, MonteCarloConfig { trials: 15_000, ..Default::default() });
    let mut count = 0;
    for point in space.points() {
        point.validate().unwrap();
        let sv = v.system_identical(day.clone(), point.component_rate(), point.c).unwrap();
        assert!(sv.mttf_mc.mttf.as_secs() > 0.0);
        count += 1;
    }
    assert_eq!(count, 4);
}
