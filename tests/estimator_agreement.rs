//! Cross-crate integration: the three assumption-free estimators (Monte
//! Carlo, renewal analysis, SoftArch) must agree with each other on every
//! kind of trace the workspace can build — including traces produced by the
//! full timing-simulator pipeline.

use std::sync::Arc;

use serr_analytic::renewal::renewal_mttf;
use serr_core::pipeline::{processor_trace, simulate_benchmark};
use serr_core::prelude::*;
use serr_mc::{MonteCarlo, MonteCarloConfig};
use serr_workload::synthesized;

fn mc() -> MonteCarlo {
    MonteCarlo::new(MonteCarloConfig { trials: 60_000, ..Default::default() })
}

fn assert_triple_agreement(trace: &dyn VulnerabilityTrace, rate: RawErrorRate, label: &str) {
    let freq = Frequency::base();
    let renewal = renewal_mttf(trace, rate, freq).expect("renewal").as_secs();
    let softarch = SoftArch::new(freq).component_mttf(trace, rate).expect("softarch").as_secs();
    let sampled = mc().component_mttf(trace, rate, freq).expect("mc");

    let sa_err = (softarch - renewal).abs() / renewal;
    assert!(sa_err < 1e-5, "{label}: SoftArch vs renewal {sa_err}");

    let mc_err = (sampled.mttf.as_secs() - renewal).abs() / renewal;
    let noise = 3.0 * sampled.relative_ci95().max(1e-3);
    assert!(mc_err < noise, "{label}: MC vs renewal {mc_err} (noise budget {noise})");
}

#[test]
fn agreement_on_simulated_benchmark_unit_traces() {
    let run = simulate_benchmark("gzip", 60_000, 1).expect("sim");
    let t = &run.output.traces;
    let rates = UnitRates::paper();
    // Push the rates up so λL is non-negligible and the agreement is
    // non-trivial.
    let boost = 1e12;
    assert_triple_agreement(&t.int_unit, rates.int_unit.scale(boost), "gzip int");
    assert_triple_agreement(&t.decode, rates.decode.scale(boost), "gzip decode");
    assert_triple_agreement(&t.regfile, rates.regfile.scale(boost), "gzip regfile");
}

#[test]
fn agreement_on_processor_composite() {
    let run = simulate_benchmark("swim", 60_000, 1).expect("sim");
    let composite = processor_trace(&run, &UnitRates::paper()).expect("composite");
    assert_triple_agreement(&composite, RawErrorRate::per_year(5e6), "swim composite");
}

#[test]
fn agreement_on_synthesized_day_and_week() {
    let freq = Frequency::base();
    let day = synthesized::day(freq);
    let week = synthesized::week(freq);
    for &scale in &[1e6, 1e9, 1e12] {
        let rate = RawErrorRate::baseline_per_bit().scale(scale);
        assert_triple_agreement(&day, rate, "day");
        assert_triple_agreement(&week, rate, "week");
    }
}

#[test]
fn agreement_on_shifted_traces() {
    let freq = Frequency::base();
    let base: Arc<dyn VulnerabilityTrace> = Arc::new(synthesized::day(freq));
    let period = base.period_cycles();
    let rate = RawErrorRate::baseline_per_bit().scale(1e11);
    for &frac in &[0.25, 0.5, 0.9] {
        let shifted = ShiftedTrace::new(base.clone(), (period as f64 * frac) as u64);
        assert_triple_agreement(&shifted, rate, "shifted day");
    }
}

#[test]
fn agreement_on_concat_trace_via_survival_weight() {
    // MC walks the ConcatTrace point-by-point; renewal uses the
    // geometric closed form — they must coincide.
    let a: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(800, 200).unwrap());
    let b: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(100, 900).unwrap());
    let concat = ConcatTrace::new(vec![(a, 2_000), (b, 2_000)]).unwrap();
    let freq = Frequency::base();
    // λ·L ≈ 2 over the 4M-cycle period.
    let rate = RawErrorRate::per_second(2.0 * freq.hz() / 4_000_000.0);
    assert_triple_agreement_concat(&concat, rate);
}

fn assert_triple_agreement_concat(trace: &ConcatTrace, rate: RawErrorRate) {
    let freq = Frequency::base();
    let renewal = renewal_mttf(trace, rate, freq).expect("renewal").as_secs();
    let sampled = mc().component_mttf(trace, rate, freq).expect("mc");
    let mc_err = (sampled.mttf.as_secs() - renewal).abs() / renewal;
    assert!(mc_err < 0.02, "concat: MC vs renewal {mc_err}");
}

#[test]
fn system_superposition_equals_explicit_parts() {
    // A system modeled part-by-part must match the rate-scaled composite
    // shortcut used by the validator.
    let freq = Frequency::base();
    let trace: Arc<dyn VulnerabilityTrace> =
        Arc::new(IntervalTrace::busy_idle(600_000, 400_000).unwrap());
    let rate = RawErrorRate::per_year(3e3);
    let c = 16u64;

    let mut builder = SystemModel::builder(freq);
    builder.add_replicated("cpu", rate, trace.clone(), c).unwrap();
    let system = builder.build().unwrap();
    let via_system = mc().system_mttf(&system).expect("system mc");

    let via_scaled = mc().component_mttf(&trace, rate.scale(c as f64), freq).expect("scaled mc");

    let diff =
        (via_system.mttf.as_secs() - via_scaled.mttf.as_secs()).abs() / via_scaled.mttf.as_secs();
    assert!(diff < 0.02, "superposition mismatch {diff}");
}
