//! The chaos harness acceptance gate: hundreds of seeded fault-injection
//! campaigns across every injector kind, with the detect-or-degrade
//! invariant checked on each — no campaign may return a `clean`-tagged
//! result that deviates from the fault-free golden answer.

use serr_core::prelude::{run_chaos, ChaosConfig, FaultKind, Provenance, SamplerKind};

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("serr-chaos-invariant-{}-{tag}", std::process::id()))
}

/// ≥ 200 campaigns over every estimator-level injector kind (the
/// `FaultKind::CORE` family — the serve-layer kinds need a running service
/// and are soaked by `serr-serve` instead), zero misses. Moderate trial
/// counts keep the suite fast; the guard's CI-derived acceptance band
/// scales with the extra sampling noise, so the invariant is exactly as
/// strict as at paper scale.
#[test]
fn two_hundred_campaigns_cover_every_injector_with_zero_misses() {
    let rounds = 16;
    let campaigns = FaultKind::CORE.len() * rounds;
    assert!(campaigns >= 200, "coverage floor: {campaigns} campaigns");
    let cfg = ChaosConfig {
        campaigns,
        seed: 0xD15E_A5ED_0000_0007,
        trials: 2_500,
        threads: 0,
        scratch_dir: Some(scratch("main")),
        ..Default::default()
    };
    let report = run_chaos(&cfg).expect("chaos harness runs");
    assert_eq!(report.outcomes.len(), campaigns);

    // Zero silently-wrong outputs, with a replay recipe on failure.
    let misses: Vec<String> = report
        .outcomes
        .iter()
        .filter(|o| o.miss)
        .map(|o| {
            format!("campaign {} kind {} seed {:#018x}: {}", o.campaign, o.kind, o.seed, o.detail)
        })
        .collect();
    assert!(misses.is_empty(), "detect-or-degrade violated:\n{}", misses.join("\n"));

    // Every core injector kind ran its full share of the cycle...
    for kind in FaultKind::CORE {
        let n = report.outcomes.iter().filter(|o| o.kind == kind).count();
        assert_eq!(n, rounds, "kind {kind} ran {n} times, expected {rounds}");
    }

    // ...and the faults were not no-ops: the harness must actually have
    // exercised the non-Clean paths. (Individual campaigns may legitimately
    // come back Clean — e.g. an injected deadline cut past the last chunk —
    // but across a full cycle per kind the detectors must fire.)
    let non_clean = report.outcomes.iter().filter(|o| o.outcome != Provenance::Clean).count();
    assert!(
        non_clean >= campaigns / 2,
        "only {non_clean} of {campaigns} campaigns left the Clean path — injectors look dormant"
    );
    for kind in [
        FaultKind::TraceValueFlip,
        FaultKind::TracePrefixPerturb,
        FaultKind::TraceConsistentCorrupt,
        FaultKind::RatePoison,
        FaultKind::CheckpointIo,
        FaultKind::JournalLock,
        FaultKind::StoreTornTail,
        FaultKind::StoreBitFlip,
        FaultKind::StoreHeaderCorrupt,
        FaultKind::StoreStaleVersion,
    ] {
        assert!(
            report.outcomes.iter().any(|o| o.kind == kind && o.outcome != Provenance::Clean),
            "kind {kind} never produced a non-Clean outcome"
        );
    }

    // The storage faults specifically must never be answered with a
    // Clean-tagged deviation: every store campaign either resumed a valid
    // prefix (Retried), reset the journal on a typed error (Degraded), or
    // legitimately lost nothing — and always reproduced the reference rows.
    for o in report.outcomes.iter().filter(|o| {
        matches!(
            o.kind,
            FaultKind::StoreTornTail
                | FaultKind::StoreBitFlip
                | FaultKind::StoreHeaderCorrupt
                | FaultKind::StoreStaleVersion
        )
    }) {
        assert!(!o.miss, "store campaign {} deviated: {}", o.campaign, o.detail);
        assert_ne!(
            o.outcome,
            Provenance::Suspect,
            "store campaign {} left suspect data: {}",
            o.campaign,
            o.detail
        );
    }
}

/// Prefix-table corruption attacks exactly the table both inversion
/// samplers invert on every trial (the event loop never reads it — see the
/// `FaultKind::TracePrefixPerturb` taxonomy entry). Under *every* sampler —
/// including the batched default, whose array passes read the same prefix
/// sums through `phase_at_cumulative_batch` — each such campaign must come
/// back detected: the compiled-trace verifier catches the damaged table
/// before any trial runs, and the guard's event-loop oracle vote backstops
/// the verifier — never as a silently wrong Clean result.
#[test]
fn prefix_corruption_is_detect_or_degrade_under_every_sampler() {
    for (tag, sampler) in [
        ("batched", SamplerKind::BatchedInversion),
        ("inv", SamplerKind::Inversion),
        ("ev", SamplerKind::EventLoop),
    ] {
        let cfg = ChaosConfig {
            campaigns: 20,
            seed: 0x0D15_EA5E_0000_0011,
            trials: 2_000,
            threads: 0,
            sampler,
            kinds: vec![FaultKind::TracePrefixPerturb],
            scratch_dir: Some(scratch(&format!("prefix-{tag}"))),
            ..Default::default()
        };
        let report = run_chaos(&cfg).expect("chaos harness runs");
        assert_eq!(report.outcomes.len(), 20);
        for o in &report.outcomes {
            assert!(!o.miss, "{tag}: campaign {} was a miss: {}", o.campaign, o.detail);
            assert_ne!(
                o.outcome,
                Provenance::Clean,
                "{tag}: campaign {} prefix corruption went unnoticed ({})",
                o.campaign,
                o.detail
            );
        }
    }
}

/// The same master seed must reproduce the identical campaign sequence and
/// outcome tags regardless of the Monte Carlo thread count — the property
/// that makes a chaos failure replayable from its logged seed.
#[test]
fn campaigns_replay_identically_across_thread_counts() {
    let base = ChaosConfig {
        campaigns: 30,
        seed: 0x0BAD_CAFE,
        trials: 2_000,
        threads: 1,
        scratch_dir: Some(scratch("replay-1")),
        ..Default::default()
    };
    let single = run_chaos(&base).expect("single-threaded chaos runs");
    let multi = run_chaos(&ChaosConfig {
        threads: 4,
        scratch_dir: Some(scratch("replay-4")),
        ..base.clone()
    })
    .expect("multi-threaded chaos runs");

    let fingerprint = |r: &serr_core::chaos::ChaosReport| -> Vec<(FaultKind, u64, Provenance)> {
        r.outcomes.iter().map(|o| (o.kind, o.seed, o.outcome)).collect()
    };
    assert_eq!(
        fingerprint(&single),
        fingerprint(&multi),
        "campaign sequence or outcome tags changed with the thread count"
    );
    // The Monte Carlo estimates themselves are chunk-deterministic, so even
    // the guarded MTTFs must agree bit-for-bit.
    for (a, b) in single.outcomes.iter().zip(&multi.outcomes) {
        assert_eq!(
            a.mttf_seconds.map(f64::to_bits),
            b.mttf_seconds.map(f64::to_bits),
            "campaign {} ({}) MTTF differs across thread counts",
            a.campaign,
            a.kind
        );
    }
}
